"""Unit and property tests for the set-associative cache array."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.parameters import CacheGeometry
from repro.mem.cache import Cache
from repro.mem.line import DirectoryLine, MESIState


def small_geometry(**overrides) -> CacheGeometry:
    parameters = dict(
        name="test", size_bytes=4096, associativity=4, line_bytes=64,
        access_cycles=1, write_back=True, num_refresh_groups=4,
        sentry_group_size=4,
    )
    parameters.update(overrides)
    return CacheGeometry(**parameters)


class TestBasicOperation:
    def test_miss_then_hit(self):
        cache = Cache(small_geometry())
        assert not cache.lookup(0x1000).hit
        cache.fill(0x1000, MESIState.SHARED, cycle=0)
        assert cache.lookup(0x1000).hit
        assert cache.access(0x1000, cycle=5).hit

    def test_access_refreshes_line(self):
        cache = Cache(small_geometry())
        line = cache.fill(0x1000, MESIState.SHARED, cycle=0)
        cache.access(0x1000, cycle=42)
        assert line.last_refresh_cycle == 42

    def test_lookup_does_not_touch(self):
        cache = Cache(small_geometry())
        line = cache.fill(0x1000, MESIState.SHARED, cycle=0)
        cache.lookup(0x1000)
        assert line.last_refresh_cycle == 0

    def test_invalidate(self):
        cache = Cache(small_geometry())
        cache.fill(0x1000, MESIState.SHARED, cycle=0)
        assert cache.invalidate(0x1000) is not None
        assert not cache.lookup(0x1000).hit
        assert cache.invalidate(0x2000) is None

    def test_block_address_roundtrip(self):
        cache = Cache(small_geometry())
        block = 0x1234 & ~63
        result = cache.lookup(block)
        line = cache.fill(block, MESIState.SHARED, cycle=0)
        assert cache.block_address_of(result.set_idx, line) == block

    def test_counts(self):
        cache = Cache(small_geometry())
        cache.fill(0x0, MESIState.SHARED, cycle=0)
        cache.fill(0x40, MESIState.MODIFIED, cycle=0)
        assert cache.count_valid() == 2
        assert cache.count_dirty() == 1


class TestReplacement:
    def test_lru_victim_is_least_recently_used(self):
        geometry = small_geometry(size_bytes=2 * 64 * 2, associativity=2)
        cache = Cache(geometry)
        # Two blocks mapping to set 0 (num_sets == 2, so stride is 128).
        a, b, c = 0x000, 0x100, 0x200
        cache.fill(a, MESIState.SHARED, cycle=0)
        cache.fill(b, MESIState.SHARED, cycle=1)
        cache.access(a, cycle=2)  # b becomes LRU
        victim = cache.choose_victim(c)
        assert victim.was_valid
        assert victim.block_address == b

    def test_invalid_way_preferred_over_eviction(self):
        geometry = small_geometry(size_bytes=2 * 64 * 2, associativity=2)
        cache = Cache(geometry)
        cache.fill(0x000, MESIState.SHARED, cycle=0)
        victim = cache.choose_victim(0x100)
        assert not victim.was_valid

    def test_eviction_reports_dirty(self):
        geometry = small_geometry(size_bytes=64 * 2, associativity=2)
        cache = Cache(geometry)
        cache.fill(0x000, MESIState.MODIFIED, cycle=0)
        cache.fill(0x080, MESIState.SHARED, cycle=1)
        victim = cache.choose_victim(0x100)
        assert victim.was_valid
        assert victim.was_dirty == (victim.block_address == 0x000)


class TestBankInterleaving:
    def test_interleaved_blocks_spread_over_sets(self):
        geometry = small_geometry()
        banks = 16
        cache = Cache(geometry, index_interleave=banks, index_offset=3)
        # Blocks belonging to bank 3: block_number % 16 == 3.
        blocks = [(3 + banks * i) * 64 for i in range(geometry.num_sets)]
        sets = {cache.set_and_tag(block)[0] for block in blocks}
        assert len(sets) == geometry.num_sets

    def test_roundtrip_with_interleaving(self):
        cache = Cache(small_geometry(), index_interleave=16, index_offset=5)
        block = (5 + 16 * 37) * 64
        result = cache.lookup(block)
        line = cache.fill(block, MESIState.SHARED, cycle=0)
        assert cache.block_address_of(result.set_idx, line) == block

    def test_invalid_interleave_rejected(self):
        with pytest.raises(ValueError):
            Cache(small_geometry(), index_interleave=0)
        with pytest.raises(ValueError):
            Cache(small_geometry(), index_interleave=4, index_offset=4)


class TestRefreshGroups:
    def test_groups_partition_all_lines(self):
        geometry = small_geometry()
        cache = Cache(geometry)
        seen = set()
        for group in range(geometry.num_refresh_groups):
            for set_idx, line in cache.lines_in_refresh_group(group):
                seen.add((set_idx, id(line)))
        assert len(seen) == geometry.num_lines

    def test_group_of_set_matches_partition(self):
        geometry = small_geometry()
        cache = Cache(geometry)
        for group in range(geometry.num_refresh_groups):
            for set_idx, _ in cache.lines_in_refresh_group(group):
                assert cache.refresh_group_of_set(set_idx) == group

    def test_bad_group_rejected(self):
        cache = Cache(small_geometry())
        with pytest.raises(ValueError):
            cache.lines_in_refresh_group(99)

    def test_group_blocking_delays_only_that_group(self):
        geometry = small_geometry()
        cache = Cache(geometry)
        cache.block_group(0, until=100)
        # A block mapping to set 0 (group 0) waits; one in the last group
        # does not.
        block_in_group0 = 0
        last_set = geometry.num_sets - 1
        block_in_last_group = last_set * 64
        assert cache.wait_cycles(block_in_group0, cycle=40) == 60
        assert cache.wait_cycles(block_in_last_group, cycle=40) == 0

    def test_whole_array_blocking(self):
        cache = Cache(small_geometry())
        cache.busy_until = 50
        assert cache.wait_cycles(0, cycle=20) == 30
        assert cache.wait_cycles(0, cycle=60) == 0


class TestDirectoryLineFactory:
    def test_l3_style_cache_uses_directory_lines(self):
        cache = Cache(small_geometry(), line_factory=DirectoryLine)
        line = cache.fill(0x40, MESIState.SHARED, cycle=0)
        assert isinstance(line, DirectoryLine)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

block_addresses = st.integers(min_value=0, max_value=2**20).map(lambda n: n * 64)


@settings(max_examples=50, deadline=None)
@given(blocks=st.lists(block_addresses, min_size=1, max_size=200))
def test_property_most_recent_fill_always_present_until_capacity(blocks):
    """After filling a block it is immediately visible."""
    cache = Cache(small_geometry())
    for cycle, block in enumerate(blocks):
        cache.fill(block, MESIState.SHARED, cycle=cycle)
        assert cache.lookup(block).hit


@settings(max_examples=50, deadline=None)
@given(blocks=st.lists(block_addresses, min_size=1, max_size=300))
def test_property_valid_count_never_exceeds_capacity(blocks):
    cache = Cache(small_geometry())
    for cycle, block in enumerate(blocks):
        if not cache.lookup(block).hit:
            cache.fill(block, MESIState.SHARED, cycle=cycle)
    assert cache.count_valid() <= cache.num_lines


@settings(max_examples=50, deadline=None)
@given(
    blocks=st.lists(block_addresses, min_size=1, max_size=200),
    interleave=st.sampled_from([1, 4, 16]),
)
def test_property_block_address_roundtrip(blocks, interleave):
    """block_address_of inverts set_and_tag for blocks owned by the bank."""
    cache = Cache(small_geometry(), index_interleave=interleave, index_offset=0)
    for cycle, block in enumerate(blocks):
        owned = (block // 64) % interleave == 0
        if not owned:
            continue
        result = cache.lookup(block)
        line = cache.fill(block, MESIState.SHARED, cycle=cycle)
        assert cache.block_address_of(result.set_idx, line) == block
