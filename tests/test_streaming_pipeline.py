"""Tests for the streaming campaign pipeline.

Covers the executor-side scheduling primitives (one-time grouping,
work-stealing chunk planning), the incremental-commit contract of
:class:`CampaignStream` (each result is durably in the store before the
consumer sees it), and the store-backed :class:`StoreSweep` aggregation
that keeps figure generation bounded in memory.
"""

from __future__ import annotations

from collections import deque

import pytest

import repro.campaign.executors as executors_module
from repro.campaign.engine import CampaignStream, run_campaign, stream_campaign
from repro.campaign.executors import (
    CHUNK_CAP,
    ParallelExecutor,
    SerialExecutor,
    batch_jobs_by_workload,
    group_jobs_by_workload,
    plan_chunk,
)
from repro.campaign.jobs import Job, enumerate_jobs
from repro.campaign.store import ResultStore
from repro.campaign.view import StoreSweep
from repro.config.parameters import (
    DataPolicySpec,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture
from repro.core.sweep import PolicyPoint
from repro.workloads.suite import WorkloadRequest

POINTS = [
    PolicyPoint(50.0, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()),
    PolicyPoint(50.0, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)),
]

LENGTH_SCALE = 0.05


@pytest.fixture(scope="module")
def arch():
    return scaled_architecture()


@pytest.fixture(scope="module")
def requests():
    return [WorkloadRequest("blackscholes", length_scale=LENGTH_SCALE)]


@pytest.fixture(scope="module")
def jobs(arch, requests):
    return enumerate_jobs(requests, POINTS, arch)


def fake_jobs(arch, applications, per_app):
    """Cheap Job objects (never executed) spanning several workload groups."""
    out = []
    for name in applications:
        request = WorkloadRequest(name, length_scale=LENGTH_SCALE)
        config = SimulationConfig.sram(arch)
        out.extend(Job(request, config) for _ in range(per_app))
    return out


class TestGrouping:
    def test_groups_preserve_enumeration_order(self, arch):
        jobs = fake_jobs(arch, ["fft", "barnes"], per_app=3)
        grouped = group_jobs_by_workload(jobs)
        assert len(grouped) == 2
        regrouped = [job for group in grouped.values() for job in group]
        assert regrouped == jobs  # per-group order is submission order

    def test_batching_accepts_precomputed_groups(self, arch):
        jobs = fake_jobs(arch, ["fft", "barnes"], per_app=5)
        grouped = group_jobs_by_workload(jobs)
        direct = batch_jobs_by_workload(jobs, max_workers=2)
        reused = batch_jobs_by_workload(jobs, max_workers=2, groups=grouped)
        assert direct == reused

    def test_parallel_run_groups_only_once(self, arch, monkeypatch):
        """The full-list grouping pass must not repeat per refill."""
        jobs = fake_jobs(arch, ["fft", "barnes", "ocean"], per_app=7)
        calls = []
        original = group_jobs_by_workload

        def counting(job_list):
            calls.append(len(job_list))
            return original(job_list)

        monkeypatch.setattr(
            executors_module, "group_jobs_by_workload", counting
        )
        monkeypatch.setattr(
            executors_module, "execute_job_batch", lambda chunk: [None] * len(chunk)
        )

        class InlinePool:
            """Runs submissions synchronously; no worker processes."""

            def submit(self, fn, *args):
                from concurrent.futures import Future

                future = Future()
                future.set_result(fn(*args))
                return future

            def shutdown(self, wait=True):
                pass

        executor = ParallelExecutor(max_workers=2)
        executor._pool = InlinePool()
        drained = list(executor.run(jobs))
        assert len(drained) == len(jobs)
        assert calls == [len(jobs)]  # one grouping pass for the whole run


class TestPlanChunk:
    def test_steals_from_longest_queue(self):
        short = deque(["s1", "s2"])
        long = deque([f"l{i}" for i in range(10)])
        chunk = plan_chunk([short, long], max_workers=2)
        assert all(item.startswith("l") for item in chunk)
        assert chunk == ["l0", "l1", "l2"]  # ceil(10 / 4), front of the queue

    def test_chunk_respects_cap_and_minimum(self):
        huge = deque(range(10_000))
        assert len(plan_chunk([huge], max_workers=1)) == CHUNK_CAP
        tiny = deque([1])
        assert plan_chunk([tiny], max_workers=8) == [1]
        assert plan_chunk([deque()], max_workers=8) == []
        assert plan_chunk([], max_workers=8) == []

    def test_draining_preserves_within_group_order(self):
        queue = deque(range(100))
        drained = []
        while True:
            chunk = plan_chunk([queue], max_workers=4)
            if not chunk:
                break
            drained.extend(chunk)
        assert drained == list(range(100))


class RecordingStore(ResultStore):
    """A JSON store that logs the order of puts for commit-order assertions."""

    def __init__(self, root):
        super().__init__(root)
        self.put_log = []

    def put_record(self, key, payload):
        self.put_log.append(key)
        return super().put_record(key, payload)


class StubExecutor:
    """Replays canned results without simulating (submission order)."""

    uses_prebuilt_workloads = False

    def __init__(self, results_by_key):
        self._results = results_by_key

    def run(self, jobs, progress=None):
        for job in jobs:
            yield job, self._results[job.key()]


@pytest.fixture(scope="module")
def canned(arch, requests, jobs, tmp_path_factory):
    """One real campaign's results, keyed by job hash, for stub replay."""
    root = tmp_path_factory.mktemp("canned")
    sweep, _ = run_campaign(
        requests, points=POINTS, architecture=arch, store=root / "store",
    )
    store = ResultStore(root / "store")
    return {key: store.get(key) for key in store.keys()}, sweep


class TestCampaignStream:
    def test_each_result_commits_before_it_is_yielded(
        self, tmp_path, jobs, canned
    ):
        results, _ = canned
        store = RecordingStore(tmp_path / "store")
        stream = CampaignStream(
            list(jobs), StubExecutor(results), store, resume=False, progress=None,
        )
        seen = []
        for job, _result in stream:
            # The contract that makes a kill lose only in-flight jobs: by the
            # time the consumer sees a result, it is already in the store.
            assert job.key() in store
            seen.append(job.key())
        assert store.put_log == seen  # committed one-by-one, in yield order
        assert stream.stats.executed == len(jobs)
        assert stream.stats.reused == 0

    def test_resume_yields_cached_results_without_executing(
        self, tmp_path, jobs, canned
    ):
        results, _ = canned
        store = ResultStore(tmp_path / "store")
        cached_job = jobs[0]
        store.put(cached_job, results[cached_job.key()])

        class ExplodingExecutor(StubExecutor):
            def run(self, pending, progress=None):
                assert cached_job not in pending  # cached job never re-runs
                yield from super().run(pending, progress)

        stream = CampaignStream(
            list(jobs), ExplodingExecutor(results), store, resume=True,
            progress=None,
        )
        drained = dict((job.key(), result) for job, result in stream)
        assert len(drained) == len(jobs)
        assert stream.stats.reused == 1
        assert stream.stats.executed == len(jobs) - 1

    def test_stats_count_duplicate_jobs_once(self, tmp_path, jobs, canned):
        results, _ = canned
        doubled = list(jobs) + [jobs[0]]
        stream = CampaignStream(
            doubled, StubExecutor(results), None, resume=False, progress=None,
        )
        assert len(list(stream)) == len(jobs)
        assert stream.stats.duplicates == 1
        assert stream.stats.total == len(doubled)

    def test_stream_campaign_smoke(self, arch, requests, tmp_path, canned):
        """End-to-end: stream_campaign commits incrementally to a real store."""
        _, sweep_before = canned
        stream = stream_campaign(
            requests, points=POINTS, architecture=arch,
            store=tmp_path / "store", store_backend="segment",
        )
        store = stream.store
        seen = 0
        for _job, _result in stream:
            seen += 1
            assert len(store) == seen  # committed the moment it completed
        assert stream.stats.executed == 3
        view = StoreSweep(store, stream.jobs, POINTS)
        assert view.materialise().to_dict() == sweep_before.to_dict()


class TestStoreSweep:
    @pytest.fixture()
    def view(self, tmp_path, jobs, canned):
        results, _ = canned
        store = ResultStore(tmp_path / "store")
        for job in jobs:
            store.put(job, results[job.key()])
        return StoreSweep(store, jobs, POINTS, result_cache=1)

    def test_matches_in_memory_sweep(self, view, canned):
        _, sweep_before = canned
        assert view.to_dict() == sweep_before.to_dict()

    def test_normalised_metrics_match(self, view, canned):
        _, sweep_before = canned
        for point in POINTS:
            assert view.normalised_memory_energy(
                point
            ) == sweep_before.normalised_memory_energy(point)
            assert view.normalised_execution_time(
                point
            ) == sweep_before.normalised_execution_time(point)

    def test_point_cache_is_bounded(self, view):
        for point in POINTS:
            view.result("blackscholes", point)
        assert len(view._result_cache) == 1  # LRU held at result_cache=1

    def test_baselines_membership_without_loading(self, tmp_path, jobs):
        # An empty store: membership checks must not touch any result.
        store = ResultStore(tmp_path / "empty")
        view = StoreSweep(store, jobs, POINTS)
        assert "blackscholes" in view.baselines
        assert "fft" not in view.baselines
        assert list(view.baselines) == ["blackscholes"]
        assert view.applications == ["blackscholes"]
        assert len(view.missing_keys()) == len(jobs)

    def test_missing_cell_raises_key_error(self, tmp_path, jobs):
        store = ResultStore(tmp_path / "empty")
        view = StoreSweep(store, jobs, POINTS)
        with pytest.raises(KeyError, match="not in store"):
            view.baseline("blackscholes")

    def test_missing_keys_empty_when_complete(self, view):
        assert view.missing_keys() == []

    def test_lazy_baselines_is_a_full_mapping(self, view, canned):
        from collections.abc import Mapping

        _, sweep_before = canned
        real = sweep_before.baselines
        lazy = view.baselines
        assert isinstance(lazy, Mapping)
        assert set(lazy.keys()) == set(real.keys())
        assert lazy.get("blackscholes").to_dict() == real["blackscholes"].to_dict()
        assert lazy.get("no-such-app") is None
        assert lazy.get("no-such-app", "fallback") == "fallback"
        assert [r.to_dict() for r in lazy.values()] == [
            r.to_dict() for r in real.values()
        ]
        assert {name: r.to_dict() for name, r in lazy.items()} == {
            name: r.to_dict() for name, r in real.items()
        }

    def test_missing_keys_takes_one_keys_snapshot(self, tmp_path, jobs, canned):
        results, _ = canned
        calls = {"keys": 0, "contains": 0}

        class CountingStore(ResultStore):
            def keys(self):
                calls["keys"] += 1
                return super().keys()

            def __contains__(self, key):
                calls["contains"] += 1
                return super().__contains__(key)

        store = CountingStore(tmp_path / "store")
        for job in jobs:
            store.put(job, results[job.key()])
        view = StoreSweep(store, jobs, POINTS)
        calls["keys"] = calls["contains"] = 0
        assert view.missing_keys() == []
        # One index snapshot, zero per-cell filesystem probes: completeness
        # checks stay O(1) store round-trips however large the grid is.
        assert calls["keys"] == 1
        assert calls["contains"] == 0


class TestStreamingRunner:
    def test_streaming_runner_returns_store_sweep(self, tmp_path, canned):
        from repro.experiments.runner import ExperimentRunner, ExperimentScale

        _, sweep_before = canned
        scale = ExperimentScale(
            applications=("blackscholes",),
            length_scale=LENGTH_SCALE,
            retention_times_us=(50.0,),
            include_all_data_policies=False,
        )
        runner = ExperimentRunner(
            scale=scale, store=tmp_path / "store",
            store_backend="segment", streaming=True,
        )
        sweep = runner.sweep()
        assert isinstance(sweep, StoreSweep)
        assert sweep.missing_keys() == []
        batch = ExperimentRunner(scale=scale)
        assert sweep.materialise().to_dict() == batch.sweep().to_dict()

    def test_streaming_requires_a_store(self):
        from repro.experiments.runner import ExperimentRunner

        with pytest.raises(ValueError, match="result store"):
            ExperimentRunner(streaming=True)


class TestParallelStreaming:
    def test_parallel_matches_serial(self, arch, requests, canned):
        """Completion-ordered parallel streaming is bit-identical to serial."""
        results, sweep_before = canned
        with ParallelExecutor(max_workers=2) as executor:
            sweep, stats = run_campaign(
                requests, points=POINTS, architecture=arch, executor=executor,
            )
        assert stats.executed == 3
        assert sweep.to_dict() == sweep_before.to_dict()

    def test_pool_persists_across_runs(self, arch, requests, canned):
        _, sweep_before = canned
        executor = ParallelExecutor(max_workers=2)
        try:
            run_campaign(
                requests, points=POINTS[:1], architecture=arch, executor=executor,
            )
            pool_first = executor._pool
            assert pool_first is not None
            sweep, _ = run_campaign(
                requests, points=POINTS, architecture=arch, executor=executor,
            )
            assert executor._pool is pool_first  # same workers, no refork
            assert sweep.to_dict() == sweep_before.to_dict()
        finally:
            executor.shutdown()
        assert executor._pool is None
