"""Unit tests for the data-based refresh policies (Table 3.1 / Fig. 4.1)."""

from __future__ import annotations

import pytest

from repro.config.parameters import DataPolicySpec
from repro.mem.line import CacheLine, DirectoryLine, MESIState
from repro.refresh.policies import (
    AllPolicy,
    DirtyPolicy,
    PolicyAction,
    ValidPolicy,
    WritebackPolicy,
    make_data_policy,
)


def invalid_line() -> CacheLine:
    return CacheLine()


def clean_line() -> CacheLine:
    line = CacheLine()
    line.fill(tag=1, state=MESIState.SHARED, cycle=0)
    return line


def dirty_line() -> CacheLine:
    line = CacheLine()
    line.fill(tag=1, state=MESIState.MODIFIED, cycle=0)
    return line


class TestAllPolicy:
    def test_refreshes_everything(self):
        policy = AllPolicy()
        for line in (invalid_line(), clean_line(), dirty_line()):
            assert policy.decide(line).action is PolicyAction.REFRESH


class TestValidPolicy:
    def test_refreshes_valid_only(self):
        policy = ValidPolicy()
        assert policy.decide(clean_line()).action is PolicyAction.REFRESH
        assert policy.decide(dirty_line()).action is PolicyAction.REFRESH
        assert policy.decide(invalid_line()).action is PolicyAction.SKIP


class TestDirtyPolicy:
    def test_refreshes_dirty_invalidates_clean(self):
        policy = DirtyPolicy()
        assert policy.decide(dirty_line()).action is PolicyAction.REFRESH
        assert policy.decide(clean_line()).action is PolicyAction.INVALIDATE
        assert policy.decide(invalid_line()).action is PolicyAction.SKIP


class TestWritebackPolicy:
    """The WB(n, m) decision procedure of Fig. 4.1."""

    def test_fresh_dirty_line_gets_n_refreshes_then_writeback(self):
        policy = WritebackPolicy(2, 3)
        line = dirty_line()
        # Count starts unset -> treated as the reference value (2).
        first = policy.decide(line)
        assert first.action is PolicyAction.REFRESH and first.new_count == 1
        line.refresh_count = first.new_count
        second = policy.decide(line)
        assert second.action is PolicyAction.REFRESH and second.new_count == 0
        line.refresh_count = second.new_count
        third = policy.decide(line)
        assert third.action is PolicyAction.WRITEBACK
        # After the write-back the line is valid-clean with a budget of m.
        assert third.new_count == 3

    def test_clean_line_invalidated_after_m_refreshes(self):
        policy = WritebackPolicy(4, 1)
        line = clean_line()
        first = policy.decide(line)
        assert first.action is PolicyAction.REFRESH and first.new_count == 0
        line.refresh_count = first.new_count
        assert policy.decide(line).action is PolicyAction.INVALIDATE

    def test_wb_0_0_is_immediately_aggressive(self):
        policy = WritebackPolicy(0, 0)
        assert policy.decide(dirty_line()).action is PolicyAction.WRITEBACK
        assert policy.decide(clean_line()).action is PolicyAction.INVALIDATE

    def test_access_resets_count(self):
        policy = WritebackPolicy(2, 5)
        line = dirty_line()
        line.refresh_count = 0
        policy.on_access(line)
        assert line.refresh_count == 2
        clean = clean_line()
        clean.refresh_count = 0
        policy.on_access(clean)
        assert clean.refresh_count == 5

    def test_invalid_lines_skipped(self):
        policy = WritebackPolicy(2, 2)
        assert policy.decide(invalid_line()).action is PolicyAction.SKIP

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            WritebackPolicy(-1, 0)

    def test_uses_count(self):
        assert WritebackPolicy(1, 1).uses_count()
        assert not ValidPolicy().uses_count()


class TestEquivalences:
    """Dirty == WB(inf, 0) and Valid == WB(inf, inf) (Section 3.2)."""

    def test_dirty_equivalent_to_wb_inf_0(self):
        dirty = DirtyPolicy()
        wb = WritebackPolicy(10**9, 0)
        for line in (clean_line(), dirty_line(), invalid_line()):
            assert dirty.decide(line).action == wb.decide(line).action

    def test_valid_equivalent_to_wb_inf_inf(self):
        valid = ValidPolicy()
        wb = WritebackPolicy(10**9, 10**9)
        for line in (clean_line(), dirty_line(), invalid_line()):
            assert valid.decide(line).action == wb.decide(line).action

    def test_works_on_directory_lines_too(self):
        policy = DirtyPolicy()
        line = DirectoryLine()
        line.fill(tag=3, state=MESIState.SHARED, cycle=0)
        line.mark_dirty()
        assert policy.decide(line).action is PolicyAction.REFRESH
        line.mark_clean()
        assert policy.decide(line).action is PolicyAction.INVALIDATE


class TestFactory:
    def test_factory_builds_each_kind(self):
        assert isinstance(make_data_policy(DataPolicySpec.all_lines()), AllPolicy)
        assert isinstance(make_data_policy(DataPolicySpec.valid()), ValidPolicy)
        assert isinstance(make_data_policy(DataPolicySpec.dirty()), DirtyPolicy)
        wb = make_data_policy(DataPolicySpec.writeback(16, 8))
        assert isinstance(wb, WritebackPolicy)
        assert wb.label == "WB(16,8)"
