"""Tests for the campaign engine: jobs, store, executors, resume, reload."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.campaign.engine import CampaignStats, make_executor, run_campaign
from repro.campaign.executors import ParallelExecutor, SerialExecutor, execute_job
from repro.campaign.jobs import Job, canonical_value, enumerate_jobs
from repro.campaign.store import ResultStore
from repro.config.parameters import DataPolicySpec, SimulationConfig, TimingPolicyKind
from repro.config.presets import scaled_architecture
from repro.core.sweep import (
    PolicyPoint,
    SweepResult,
    default_policy_points,
    run_sweep,
)
from repro.core.results import SimulationResult
from repro.experiments.runner import ExperimentRunner, ExperimentScale
from repro.workloads.suite import WorkloadRequest, build_suite

#: A deliberately tiny grid so every test in this module runs in seconds.
POINTS = [
    PolicyPoint(50.0, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()),
    PolicyPoint(50.0, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)),
]

LENGTH_SCALE = 0.05


@pytest.fixture(scope="module")
def arch():
    return scaled_architecture()


@pytest.fixture(scope="module")
def requests():
    return [WorkloadRequest("blackscholes", length_scale=LENGTH_SCALE)]


@pytest.fixture(scope="module")
def serial_sweep(arch, requests):
    sweep, stats = run_campaign(requests, points=POINTS, architecture=arch)
    return sweep, stats


class TestJobs:
    def test_enumeration_order_and_labels(self, arch, requests):
        jobs = enumerate_jobs(requests, POINTS, arch)
        assert len(jobs) == 1 + len(POINTS)
        assert jobs[0].is_baseline and jobs[0].label == "SRAM baseline"
        assert [job.point_label for job in jobs[1:]] == [p.label for p in POINTS]
        assert all(job.application == "blackscholes" for job in jobs)

    def test_keys_are_content_addressed(self, arch, requests):
        jobs = enumerate_jobs(requests, POINTS, arch)
        keys = [job.key() for job in jobs]
        assert len(set(keys)) == len(keys)  # distinct configs -> distinct keys
        # Re-enumerating yields the same hashes (stable content addressing).
        again = enumerate_jobs(requests, POINTS, arch)
        assert [job.key() for job in again] == keys

    def test_key_changes_with_workload_recipe(self, arch):
        base = Job(WorkloadRequest("fft"), SimulationConfig.sram(arch))
        rescaled = Job(
            WorkloadRequest("fft", length_scale=2.0), SimulationConfig.sram(arch)
        )
        reseeded = Job(WorkloadRequest("fft", seed=7), SimulationConfig.sram(arch))
        assert len({base.key(), rescaled.key(), reseeded.key()}) == 3

    def test_jobs_are_picklable(self, arch, requests):
        for job in enumerate_jobs(requests, POINTS, arch):
            clone = pickle.loads(pickle.dumps(job))
            assert clone == job
            assert clone.key() == job.key()

    def test_canonical_value_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonical_value(object())


class TestWorkloadRequest:
    def test_build_is_deterministic(self, arch):
        request = WorkloadRequest("blackscholes", length_scale=LENGTH_SCALE)
        first = request.build(arch)
        second = request.build(arch)
        assert first.total_references() == second.total_references()
        for a, b in zip(first.traces, second.traces):
            assert a.records == b.records

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            WorkloadRequest("fft", length_scale=0.0)


class TestResultStore:
    def test_round_trip(self, tmp_path, arch, requests, serial_sweep):
        sweep, _ = serial_sweep
        store = ResultStore(tmp_path / "store")
        jobs = enumerate_jobs(requests, POINTS, arch)
        baseline = sweep.baseline("blackscholes")
        store.put(jobs[0], baseline)
        assert jobs[0].key() in store
        loaded = store.get(jobs[0].key())
        assert loaded is not None
        assert loaded.to_dict() == baseline.to_dict()
        assert loaded.label == "SRAM"

    def test_missing_and_corrupt_entries_are_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("deadbeef") is None
        store.path_for("deadbeef").write_text("{not json")
        assert store.get("deadbeef") is None

    def test_len_and_keys(self, tmp_path, arch, requests, serial_sweep):
        sweep, _ = serial_sweep
        store = ResultStore(tmp_path / "store")
        assert len(store) == 0
        jobs = enumerate_jobs(requests, POINTS, arch)
        store.put(jobs[0], sweep.baseline("blackscholes"))
        assert list(store.keys()) == [jobs[0].key()]


class TestExecutors:
    def test_parallel_matches_serial_bit_for_bit(self, arch, requests, serial_sweep):
        serial, _ = serial_sweep
        parallel, stats = run_campaign(
            requests,
            points=POINTS,
            architecture=arch,
            executor=ParallelExecutor(4),
        )
        assert stats.executed == stats.total
        assert parallel.to_dict() == serial.to_dict()

    def test_run_sweep_matches_campaign(self, arch, requests, serial_sweep):
        serial, _ = serial_sweep
        workloads = build_suite(
            arch, length_scale=LENGTH_SCALE, names=["blackscholes"]
        )
        legacy = run_sweep(workloads, architecture=arch, points=POINTS)
        assert legacy.to_dict() == serial.to_dict()

    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), ParallelExecutor)
        with pytest.raises(ValueError):
            make_executor(0)

    def test_execute_job_runs_baseline(self, arch, requests):
        job = enumerate_jobs(requests, POINTS, arch)[0]
        result = execute_job(job)
        assert result.label == "SRAM"
        assert result.execution_cycles > 0

    def test_batches_group_jobs_by_workload(self, arch):
        from repro.campaign.executors import batch_jobs_by_workload

        requests = [
            WorkloadRequest("blackscholes", length_scale=LENGTH_SCALE),
            WorkloadRequest("fft", length_scale=LENGTH_SCALE),
        ]
        jobs = enumerate_jobs(requests, POINTS, arch)
        batches = batch_jobs_by_workload(jobs, max_workers=2)
        # Every batch regenerates at most one workload...
        for batch in batches:
            assert len({(job.workload, job.config.architecture) for job in batch}) == 1
        # ...no job is lost or duplicated, and order within an application
        # is preserved.
        flattened = [job for batch in batches for job in batch]
        assert sorted(job.key() for job in flattened) == sorted(job.key() for job in jobs)
        per_app = {}
        for job in flattened:
            per_app.setdefault(job.application, []).append(job.key())
        for app, keys in per_app.items():
            assert keys == [job.key() for job in jobs if job.application == app]

    def test_large_single_application_grid_spreads_over_workers(self, arch):
        from repro.campaign.executors import batch_jobs_by_workload

        requests = [WorkloadRequest("fft", length_scale=LENGTH_SCALE)]
        jobs = enumerate_jobs(requests, POINTS * 4, arch)
        batches = batch_jobs_by_workload(jobs, max_workers=4)
        # 9 jobs over <= 4 batches (ceil split), never one giant batch.
        assert 1 < len(batches) <= 4
        assert sum(len(batch) for batch in batches) == len(jobs)


class TestResume:
    def test_resume_executes_zero_new_simulations(self, tmp_path, arch, requests):
        store_dir = tmp_path / "store"
        first, stats1 = run_campaign(
            requests, points=POINTS, architecture=arch, store=store_dir, resume=True
        )
        assert stats1.executed == stats1.total and stats1.reused == 0
        second, stats2 = run_campaign(
            requests, points=POINTS, architecture=arch, store=store_dir, resume=True
        )
        assert stats2.executed == 0 and stats2.reused == stats2.total
        assert second.to_dict() == first.to_dict()

    def test_grid_extension_only_runs_new_points(self, tmp_path, arch, requests):
        store_dir = tmp_path / "store"
        run_campaign(
            requests, points=POINTS, architecture=arch, store=store_dir, resume=True
        )
        extended = POINTS + [
            PolicyPoint(100.0, TimingPolicyKind.REFRINT, DataPolicySpec.valid())
        ]
        _, stats = run_campaign(
            requests, points=extended, architecture=arch, store=store_dir, resume=True
        )
        assert stats.reused == 1 + len(POINTS)
        assert stats.executed == 1  # only the new retention point

    def test_without_resume_store_is_write_only(self, tmp_path, arch, requests):
        store_dir = tmp_path / "store"
        run_campaign(
            requests, points=POINTS, architecture=arch, store=store_dir, resume=True
        )
        _, stats = run_campaign(
            requests, points=POINTS, architecture=arch, store=store_dir, resume=False
        )
        assert stats.executed == stats.total

    def test_store_refused_for_prebuilt_workloads(self, tmp_path, arch, requests):
        # Pre-built traces are not described by the jobs' recipes, so
        # persisting their results would poison the content-addressed store.
        workloads = build_suite(arch, length_scale=0.01, names=["blackscholes"])
        with pytest.raises(ValueError, match="pre-built"):
            run_campaign(
                requests,
                points=POINTS,
                architecture=arch,
                executor=SerialExecutor(workloads=workloads),
                store=tmp_path / "store",
            )

    def test_duplicate_requests_simulate_once(self, arch):
        reqs = [
            WorkloadRequest("blackscholes", length_scale=LENGTH_SCALE),
            WorkloadRequest("blackscholes", length_scale=LENGTH_SCALE),
        ]
        sweep, stats = run_campaign(reqs, points=POINTS, architecture=arch)
        assert stats.executed == 1 + len(POINTS)
        assert stats.duplicates == 1 + len(POINTS)
        assert sweep.applications == ["blackscholes"]

    def test_stats_summary_text(self):
        stats = CampaignStats(total=5, executed=2, reused=3)
        assert "2 simulated" in stats.summary()
        assert "3 reused" in stats.summary()
        assert "duplicates" not in stats.summary()
        assert "4 duplicates" in CampaignStats(5, 1, 0, 4).summary()


class TestSerialisationRoundTrips:
    def test_simulation_result_round_trip(self, serial_sweep):
        sweep, _ = serial_sweep
        for result in [sweep.baseline("blackscholes")] + list(
            sweep.results["blackscholes"].values()
        ):
            data = json.loads(json.dumps(result.to_dict()))
            restored = SimulationResult.from_dict(data)
            assert restored.to_dict() == result.to_dict()
            assert restored.label == result.label

    def test_sweep_result_round_trip(self, serial_sweep):
        sweep, _ = serial_sweep
        data = json.loads(json.dumps(sweep.to_dict()))
        restored = SweepResult.from_dict(data)
        assert restored.to_dict() == sweep.to_dict()
        assert restored.applications == sweep.applications
        assert [p.label for p in restored.points] == [p.label for p in sweep.points]

    def test_policy_point_label_round_trip(self):
        for point in default_policy_points():
            assert PolicyPoint.from_label(point.label) == point
        with pytest.raises(ValueError):
            PolicyPoint.from_label("50us/Q.sometimes")

    def test_policy_point_label_round_trip_awkward_retentions(self):
        # %g renders >= 1e6 us in scientific notation and truncates values
        # with more than 6 significant digits; both must round-trip exactly.
        for retention in (1e6, 2.5e-5, 123456.7, 1 / 3):
            point = PolicyPoint(
                retention, TimingPolicyKind.REFRINT, DataPolicySpec.valid()
            )
            assert PolicyPoint.from_label(point.label) == point

    def test_application_order_survives_sorted_json(self, arch):
        # json.dump(..., sort_keys=True) alphabetises the mappings; the
        # explicit "applications" key must preserve insertion order.
        reqs = [
            WorkloadRequest(name, length_scale=LENGTH_SCALE)
            for name in ("fft", "barnes")
        ]
        sweep, _ = run_campaign(reqs, points=POINTS[:1], architecture=arch)
        assert sweep.applications == ["fft", "barnes"]
        sorted_json = json.dumps(sweep.to_dict(), sort_keys=True)
        restored = SweepResult.from_dict(json.loads(sorted_json))
        assert restored.applications == ["fft", "barnes"]

    def test_restored_result_supports_normalisation(self, serial_sweep):
        sweep, _ = serial_sweep
        restored = SweepResult.from_dict(sweep.to_dict())
        for point in POINTS:
            expected = sweep.normalised_memory_energy(point)
            assert restored.normalised_memory_energy(point) == expected


class TestRunnerReload:
    SCALE = ExperimentScale(
        applications=("blackscholes",),
        length_scale=LENGTH_SCALE,
        retention_times_us=(50.0,),
        include_all_data_policies=False,
    )

    def test_reloads_matching_cache(self, tmp_path):
        cache = tmp_path / "sweep.json"
        first = ExperimentRunner(scale=self.SCALE, cache_path=cache)
        sweep = first.sweep()
        assert cache.exists() and not first.reloaded_from_cache
        second = ExperimentRunner(scale=self.SCALE, cache_path=cache)
        reloaded = second.sweep()
        assert second.reloaded_from_cache
        assert reloaded.to_dict() == sweep.to_dict()

    def test_ignores_mismatched_cache(self, tmp_path):
        cache = tmp_path / "sweep.json"
        ExperimentRunner(scale=self.SCALE, cache_path=cache).sweep()
        other_scale = ExperimentScale(
            applications=("blackscholes",),
            length_scale=LENGTH_SCALE * 2,
            retention_times_us=(50.0,),
            include_all_data_policies=False,
        )
        runner = ExperimentRunner(scale=other_scale, cache_path=cache)
        runner.sweep()
        assert not runner.reloaded_from_cache

    def test_ignores_cache_from_different_architecture(self, tmp_path):
        from repro.config.presets import paper_architecture

        cache = tmp_path / "sweep.json"
        ExperimentRunner(scale=self.SCALE, cache_path=cache).sweep()
        runner = ExperimentRunner(
            scale=self.SCALE, architecture=paper_architecture(), cache_path=cache
        )
        # Only the reload decision is under test; don't run the (slow)
        # paper-sized sweep itself.
        assert runner._reload_summary() is None

    def test_ignores_corrupt_cache(self, tmp_path):
        cache = tmp_path / "sweep.json"
        cache.write_text("{broken")
        runner = ExperimentRunner(scale=self.SCALE, cache_path=cache)
        runner.sweep()
        assert not runner.reloaded_from_cache
