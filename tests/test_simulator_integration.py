"""Integration tests: full simulations on the tiny and scaled geometries."""

from __future__ import annotations

import pytest

from repro.config.parameters import (
    DataPolicySpec,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.core.simulator import RefrintSimulator
from repro.workloads.suite import build_application
from tests.conftest import make_refresh_config

#: A short trace keeps each integration simulation well under a second.
LENGTH = 0.08


def edram(architecture, timing, data, retention=1000):
    refresh = make_refresh_config(
        architecture, timing=timing, data=data, retention_cycles=retention
    )
    return SimulationConfig.edram(refresh, architecture)


@pytest.fixture(scope="module")
def scaled_workload():
    from repro.config.presets import scaled_architecture

    return build_application("barnes", scaled_architecture(), length_scale=LENGTH)


@pytest.fixture(scope="module")
def scaled_results(scaled_workload):
    """One SRAM baseline and a handful of eDRAM points, simulated once."""
    from repro.config.presets import scaled_architecture

    arch = scaled_architecture()
    results = {"SRAM": RefrintSimulator(SimulationConfig.sram(arch)).run(scaled_workload)}
    points = {
        "P.all": (TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()),
        "P.valid": (TimingPolicyKind.PERIODIC, DataPolicySpec.valid()),
        "R.valid": (TimingPolicyKind.REFRINT, DataPolicySpec.valid()),
        "R.WB(8,8)": (TimingPolicyKind.REFRINT, DataPolicySpec.writeback(8, 8)),
    }
    for label, (timing, data) in points.items():
        config = edram(arch, timing, data, retention=1562)
        results[label] = RefrintSimulator(config).run(scaled_workload)
    return results


class TestBasicRuns:
    def test_simulation_completes_and_reports(self, scaled_results, scaled_workload):
        result = scaled_results["SRAM"]
        assert result.execution_cycles > 0
        assert result.memory_energy() > 0
        assert result.system_energy() > result.memory_energy()
        assert len(result.per_core_finish_cycles) == 16
        assert result.counter("instructions") > 0
        assert result.application == "barnes"

    def test_same_workload_same_result(self, scaled_workload):
        from repro.config.presets import scaled_architecture

        arch = scaled_architecture()
        config = SimulationConfig.sram(arch)
        first = RefrintSimulator(config).run(scaled_workload)
        second = RefrintSimulator(config).run(scaled_workload)
        assert first.execution_cycles == second.execution_cycles
        assert first.memory_energy() == pytest.approx(second.memory_energy())

    def test_thread_count_mismatch_rejected(self, tiny_architecture):
        workload = build_application("fft", tiny_architecture, length_scale=0.01)
        bad = SimulationConfig.scaled()
        # tiny and scaled architectures differ, but both have 16 cores, so
        # mismatches must be created explicitly.
        traces = workload.traces[:8]
        from repro.workloads.suite import ApplicationWorkload

        short = ApplicationWorkload(spec=workload.spec, traces=traces)
        with pytest.raises(ValueError):
            RefrintSimulator(bad).run(short)


class TestPaperInvariants:
    """The qualitative claims of Section 6 that must hold on any run."""

    def test_every_edram_config_beats_sram_memory_energy(self, scaled_results):
        baseline = scaled_results["SRAM"]
        for label, result in scaled_results.items():
            if label == "SRAM":
                continue
            assert result.normalised_memory_energy(baseline) < 1.0, label

    def test_sram_has_no_refresh_energy_and_edram_does(self, scaled_results):
        assert scaled_results["SRAM"].energy.by_component["refresh"] == 0.0
        assert scaled_results["R.valid"].energy.by_component["refresh"] > 0.0

    def test_refrint_competitive_with_periodic_at_same_data_policy(self, scaled_results):
        # Refrint pays a Sentry-bit margin (its lines are refreshed a third
        # more often than strictly necessary, Section 4.1) but avoids the
        # periodic scheme's cache blocking; on a short trace the energy gap
        # can be within noise, so assert Refrint is at least competitive on
        # energy and strictly better on execution time.
        baseline = scaled_results["SRAM"]
        periodic = scaled_results["P.valid"]
        refrint = scaled_results["R.valid"]
        assert refrint.normalised_memory_energy(baseline) <= (
            1.05 * periodic.normalised_memory_energy(baseline)
        )
        assert refrint.normalised_execution_time(baseline) <= periodic.normalised_execution_time(baseline)

    def test_refrint_wb_beats_naive_edram_baseline(self, scaled_results):
        # The paper's headline comparison: intelligent refresh (Refrint)
        # versus the naive eDRAM baseline (Periodic-All).
        baseline = scaled_results["SRAM"]
        naive = scaled_results["P.all"]
        refrint = scaled_results["R.WB(8,8)"]
        assert refrint.normalised_memory_energy(baseline) < naive.normalised_memory_energy(baseline)

    def test_periodic_slowdown_exceeds_refrint_slowdown(self, scaled_results):
        baseline = scaled_results["SRAM"]
        assert (
            scaled_results["P.all"].normalised_execution_time(baseline)
            > scaled_results["R.valid"].normalised_execution_time(baseline)
        )

    def test_refrint_valid_refreshes_fewer_lines_than_periodic_all(self, scaled_results):
        assert (
            scaled_results["R.valid"].counter("l3_refreshes")
            < scaled_results["P.all"].counter("l3_refreshes")
        )

    def test_no_decay_violations_anywhere(self, scaled_results):
        for label, result in scaled_results.items():
            assert result.counter("decay_violations") == 0, label

    def test_wb_policy_reduces_refresh_rate_versus_valid(self, scaled_results):
        # WB(8, 8) stops refreshing idle lines after their Count runs out, so
        # its refreshes per executed cycle cannot exceed Valid's (it may run
        # slightly longer because of the extra misses its invalidations
        # cause, which is why the comparison is rate based).
        wb = scaled_results["R.WB(8,8)"]
        valid = scaled_results["R.valid"]
        wb_rate = wb.counter("l3_refreshes") / wb.execution_cycles
        valid_rate = valid.counter("l3_refreshes") / valid.execution_cycles
        assert wb_rate <= valid_rate * 1.02

    def test_wb_policy_causes_policy_invalidations(self, scaled_results):
        assert scaled_results["R.WB(8,8)"].counter("l3_policy_invalidations") > 0
        assert scaled_results["R.valid"].counter("l3_policy_invalidations") == 0

    def test_component_breakdown_sums_to_memory_total(self, scaled_results):
        for result in scaled_results.values():
            total = sum(result.energy.by_component.values())
            assert total == pytest.approx(result.memory_energy(), rel=1e-9)

    def test_normalised_breakdowns_sum_to_normalised_memory(self, scaled_results):
        baseline = scaled_results["SRAM"]
        for label, result in scaled_results.items():
            levels = result.normalised_level_breakdown(baseline)
            components = result.normalised_component_breakdown(baseline)
            expected = result.normalised_memory_energy(baseline)
            assert sum(levels.values()) == pytest.approx(expected, rel=1e-9), label
            assert sum(components.values()) == pytest.approx(expected, rel=1e-9), label


class TestResultSerialisation:
    def test_to_dict_roundtrips_key_metrics(self, scaled_results):
        result = scaled_results["R.valid"]
        data = result.to_dict()
        assert data["application"] == "barnes"
        assert data["label"] == "R.valid"
        assert data["memory_energy_j"] == pytest.approx(result.memory_energy())
        assert data["execution_cycles"] == result.execution_cycles
        assert isinstance(data["counters"], dict)
