"""Unit and property tests for the torus topology and network model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.network import NetworkMessage, TorusNetwork
from repro.noc.topology import TorusTopology
from repro.utils.statistics import Counter

TORUS = TorusTopology(width=4, height=4)
vertices = st.integers(min_value=0, max_value=TORUS.num_vertices - 1)


class TestTopology:
    def test_coordinates_roundtrip(self):
        for vertex in TORUS.all_vertices():
            x, y = TORUS.coordinates(vertex)
            assert TORUS.vertex(x, y) == vertex

    def test_wraparound_distance(self):
        # Vertex 0 is (0,0); vertex 3 is (3,0): one hop via wrap-around.
        assert TORUS.hop_distance(0, 3) == 1
        # Opposite corner (2,2) is the farthest point on a 4x4 torus.
        assert TORUS.hop_distance(0, TORUS.vertex(2, 2)) == 4

    def test_neighbours(self):
        neighbours = TORUS.neighbours(0)
        assert len(neighbours) == 4
        assert set(neighbours) == {1, 3, 4, 12}

    def test_route_endpoints_and_length(self):
        route = TORUS.route(0, 10)
        assert route[0] == 0 and route[-1] == 10
        assert len(route) == TORUS.hop_distance(0, 10) + 1

    def test_invalid_vertex_rejected(self):
        with pytest.raises(ValueError):
            TORUS.hop_distance(0, 16)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            TorusTopology(width=0, height=4)


@settings(max_examples=100, deadline=None)
@given(src=vertices, dst=vertices)
def test_property_distance_symmetric_and_bounded(src, dst):
    distance = TORUS.hop_distance(src, dst)
    assert distance == TORUS.hop_distance(dst, src)
    assert 0 <= distance <= 4  # max for a 4x4 torus is 2 + 2
    assert (distance == 0) == (src == dst)


@settings(max_examples=100, deadline=None)
@given(src=vertices, dst=vertices)
def test_property_route_follows_neighbour_links(src, dst):
    route = TORUS.route(src, dst)
    for here, there in zip(route, route[1:]):
        assert there in TORUS.neighbours(here)
    assert len(route) - 1 == TORUS.hop_distance(src, dst)


@settings(max_examples=100, deadline=None)
@given(a=vertices, b=vertices, c=vertices)
def test_property_triangle_inequality(a, b, c):
    assert TORUS.hop_distance(a, c) <= TORUS.hop_distance(a, b) + TORUS.hop_distance(b, c)


class TestNetworkModel:
    def test_latency_proportional_to_hops(self):
        network = TorusNetwork(TORUS, router_hop_cycles=1, link_hop_cycles=1)
        assert network.latency(0, 0) == 0
        assert network.latency(0, 1) == 2
        assert network.latency(0, TORUS.vertex(2, 2)) == 8

    def test_message_flit_count(self):
        assert NetworkMessage(0, 1, payload_bytes=0).flits == 1
        assert NetworkMessage(0, 1, payload_bytes=64).flits == 9

    def test_send_accumulates_counters(self):
        counters = Counter()
        network = TorusNetwork(TORUS, counters=counters)
        network.send_control(0, 1)
        network.send_data(0, 1, line_bytes=64)
        assert counters["network_messages"] == 2
        # 1 hop * (1 flit + 9 flits) = 10 weighted hops on each counter.
        assert counters["network_router_hops"] == 10
        assert counters["network_link_hops"] == 10

    def test_same_vertex_message_costs_no_hops(self):
        counters = Counter()
        network = TorusNetwork(TORUS, counters=counters)
        assert network.send_control(5, 5) == 0
        assert counters["network_router_hops"] == 0
