"""Unit tests for the configuration dataclasses and presets."""

from __future__ import annotations

import pytest

from repro.config.parameters import (
    ArchitectureConfig,
    CacheGeometry,
    DataPolicyKind,
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
    policy_grid,
)
from repro.config.presets import (
    PAPER_RETENTION_TIMES_US,
    paper_architecture,
    paper_data_policies,
    paper_retention_times_cycles,
    scaled_architecture,
    scaled_retention_cycles,
)


class TestCacheGeometry:
    def test_derived_quantities(self):
        geometry = CacheGeometry(
            name="l2", size_bytes=256 * 1024, associativity=8, line_bytes=64,
            access_cycles=2,
        )
        assert geometry.num_sets == 512
        assert geometry.num_lines == 4096
        assert geometry.lines_per_refresh_group == 1024

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(
                name="bad", size_bytes=1000, associativity=8, line_bytes=64,
                access_cycles=1,
            )

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(
                name="bad", size_bytes=3 * 64 * 8, associativity=8, line_bytes=64,
                access_cycles=1,
            )


class TestDataPolicySpec:
    def test_labels(self):
        assert DataPolicySpec.valid().label == "valid"
        assert DataPolicySpec.dirty().label == "dirty"
        assert DataPolicySpec.all_lines().label == "all"
        assert DataPolicySpec.writeback(32, 32).label == "WB(32,32)"

    def test_wb_requires_parameters(self):
        with pytest.raises(ValueError):
            DataPolicySpec(DataPolicyKind.WRITEBACK)

    def test_non_wb_rejects_parameters(self):
        with pytest.raises(ValueError):
            DataPolicySpec(DataPolicyKind.VALID, dirty_refreshes=4, clean_refreshes=4)

    def test_wb_rejects_negative(self):
        with pytest.raises(ValueError):
            DataPolicySpec.writeback(-1, 4)


class TestRefreshConfig:
    def test_sentry_retention(self):
        config = RefreshConfig(
            retention_cycles=1000,
            sentry_margin_cycles=100,
            timing_policy=TimingPolicyKind.REFRINT,
            l3_data_policy=DataPolicySpec.valid(),
        )
        assert config.sentry_retention_cycles == 900
        assert config.label == "R.valid"

    def test_margin_must_be_smaller_than_retention(self):
        with pytest.raises(ValueError):
            RefreshConfig(
                retention_cycles=100,
                sentry_margin_cycles=100,
                timing_policy=TimingPolicyKind.REFRINT,
                l3_data_policy=DataPolicySpec.valid(),
            )

    def test_derive_sentry_margin_is_conservative(self):
        margin = RefreshConfig.derive_sentry_margin(16384, 50_000)
        assert margin == 16384
        # Margin never swallows the whole retention period.
        assert RefreshConfig.derive_sentry_margin(100, 50) == 49

    def test_per_level_policies_default_to_valid(self):
        config = RefreshConfig(
            retention_cycles=1000,
            sentry_margin_cycles=16,
            timing_policy=TimingPolicyKind.REFRINT,
            l3_data_policy=DataPolicySpec.writeback(8, 8),
        )
        assert config.data_policy_for_level("l1").kind is DataPolicyKind.VALID
        assert config.data_policy_for_level("l2").kind is DataPolicyKind.VALID
        assert config.data_policy_for_level("l3").kind is DataPolicyKind.WRITEBACK
        with pytest.raises(ValueError):
            config.data_policy_for_level("l4")


class TestSimulationConfig:
    def test_sram_cannot_have_refresh(self, tiny_architecture):
        from tests.conftest import make_refresh_config

        with pytest.raises(ValueError):
            SimulationConfig(
                architecture=tiny_architecture,
                technology=SimulationConfig.sram().technology,
                refresh=make_refresh_config(tiny_architecture),
            )

    def test_edram_requires_refresh(self, tiny_architecture):
        with pytest.raises(ValueError):
            SimulationConfig.edram(None, tiny_architecture)  # type: ignore[arg-type]

    def test_labels(self, tiny_edram_config, tiny_sram_config):
        assert tiny_sram_config.label == "SRAM"
        assert tiny_edram_config.label.startswith("R.")

    def test_as_sram_baseline_roundtrip(self, tiny_edram_config):
        baseline = tiny_edram_config.as_sram_baseline()
        assert not baseline.is_edram
        assert baseline.architecture is tiny_edram_config.architecture
        again = baseline.with_refresh(tiny_edram_config.refresh)
        assert again.is_edram

    def test_scaled_factory(self):
        config = SimulationConfig.scaled(retention_us=100.0)
        assert config.is_edram
        assert config.refresh.retention_cycles == scaled_retention_cycles(100.0)


class TestArchitecture:
    def test_paper_architecture_matches_table_5_1(self):
        arch = paper_architecture()
        assert arch.num_cores == 16
        assert arch.l1i.size_bytes == 32 * 1024 and arch.l1i.associativity == 2
        assert arch.l1d.size_bytes == 32 * 1024 and arch.l1d.associativity == 4
        assert not arch.l1d.write_back  # write-through
        assert arch.l2.size_bytes == 256 * 1024 and arch.l2.associativity == 8
        assert arch.l3_bank.size_bytes == 1024 * 1024 and arch.num_l3_banks == 16
        assert arch.line_bytes == 64
        assert arch.dram_access_cycles == 40
        assert arch.mesh_width == 4 and arch.mesh_height == 4
        assert arch.l3_total_bytes == 16 * 1024 * 1024

    def test_scaled_architecture_preserves_structure(self):
        arch = scaled_architecture()
        paper = paper_architecture()
        assert arch.num_cores == paper.num_cores
        assert arch.line_bytes == paper.line_bytes
        assert arch.l1d.associativity == paper.l1d.associativity
        assert arch.l2.associativity == paper.l2.associativity
        assert arch.l3_bank.associativity == paper.l3_bank.associativity
        assert arch.l3_total_bytes < paper.l3_total_bytes
        # L1 < L2 < aggregate L3 ordering survives scaling.
        assert arch.l1d.size_bytes < arch.l2.size_bytes < arch.l3_total_bytes

    def test_cores_must_match_mesh(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(num_cores=8)

    def test_cycle_second_conversion(self):
        arch = paper_architecture()
        assert arch.cycles_from_seconds(50e-6) == 50_000
        assert arch.seconds_from_cycles(50_000) == pytest.approx(50e-6)


class TestPresets:
    def test_retention_times(self):
        assert PAPER_RETENTION_TIMES_US == (50.0, 100.0, 200.0)
        assert paper_retention_times_cycles() == (50_000, 100_000, 200_000)

    def test_scaled_retention_preserves_refresh_rate(self):
        # lines / retention must match between paper and scaled geometries.
        paper = paper_architecture()
        scaled = scaled_architecture()
        paper_rate = paper.l3_bank.num_lines / 50_000
        scaled_rate = scaled.l3_bank.num_lines / scaled_retention_cycles(50.0)
        assert scaled_rate == pytest.approx(paper_rate, rel=0.05)

    def test_paper_data_policies_match_table_5_4(self):
        labels = [spec.label for spec in paper_data_policies()]
        assert labels == [
            "all", "valid", "dirty", "WB(4,4)", "WB(8,8)", "WB(16,16)", "WB(32,32)",
        ]

    def test_policy_grid_has_42_points(self):
        arch = scaled_architecture()
        grid = policy_grid(
            paper_retention_times_cycles(),
            (TimingPolicyKind.PERIODIC, TimingPolicyKind.REFRINT),
            paper_data_policies(),
            arch,
        )
        assert len(grid) == 42
        assert all(config.is_edram for config in grid.values())
