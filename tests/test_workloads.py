"""Unit and property tests for the synthetic workload generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import scaled_architecture
from repro.core.classes import APPLICATION_CLASSES, classes_consistent_with_specs
from repro.workloads.suite import (
    APPLICATION_NAMES,
    application_class,
    application_specs,
    build_application,
    build_suite,
)
from repro.workloads.synthetic import (
    SHARED_REGION_BASE,
    SyntheticTraceGenerator,
    TraceParameters,
)


def small_parameters(**overrides) -> TraceParameters:
    parameters = dict(
        num_threads=4,
        references_per_thread=500,
        shared_footprint_bytes=64 * 1024,
        private_footprint_bytes=8 * 1024,
        hot_footprint_bytes=1024,
        hot_fraction=0.5,
        shared_fraction=0.5,
        sequential_fraction=0.3,
        migration_fraction=0.2,
        write_fraction=0.3,
        seed=7,
    )
    parameters.update(overrides)
    return TraceParameters(**parameters)


class TestTraceParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            small_parameters(hot_fraction=1.5)
        with pytest.raises(ValueError):
            small_parameters(sequential_fraction=0.8, migration_fraction=0.5)
        with pytest.raises(ValueError):
            small_parameters(num_threads=0)
        with pytest.raises(ValueError):
            small_parameters(hot_footprint_bytes=4)

    def test_word_counts(self):
        params = small_parameters()
        assert params.shared_words == 64 * 1024 // 8
        assert params.hot_words == 128


class TestGenerator:
    def test_deterministic_given_seed(self):
        params = small_parameters()
        first = SyntheticTraceGenerator(params).generate_thread(1)
        second = SyntheticTraceGenerator(params).generate_thread(1)
        assert [r.address for r in first] == [r.address for r in second]
        assert [r.operation for r in first] == [r.operation for r in second]

    def test_different_threads_differ(self):
        params = small_parameters()
        generator = SyntheticTraceGenerator(params)
        t0 = generator.generate_thread(0)
        t1 = generator.generate_thread(1)
        assert [r.address for r in t0] != [r.address for r in t1]

    def test_write_fraction_respected(self):
        params = small_parameters(write_fraction=0.5, references_per_thread=4000)
        trace = SyntheticTraceGenerator(params).generate_thread(0)
        assert trace.read_fraction() == pytest.approx(0.5, abs=0.05)

    def test_zero_references(self):
        params = small_parameters(references_per_thread=0)
        trace = SyntheticTraceGenerator(params).generate_thread(0)
        assert len(trace) == 0

    def test_private_regions_do_not_overlap_between_threads(self):
        params = small_parameters(hot_fraction=0.0, shared_fraction=0.0)
        generator = SyntheticTraceGenerator(params)
        footprints = []
        for thread in range(params.num_threads):
            addresses = {r.address for r in generator.generate_thread(thread)}
            footprints.append(addresses)
        for i in range(len(footprints)):
            for j in range(i + 1, len(footprints)):
                assert footprints[i].isdisjoint(footprints[j])

    def test_shared_region_is_shared_between_threads(self):
        params = small_parameters(
            hot_fraction=0.0, shared_fraction=1.0,
            sequential_fraction=0.0, migration_fraction=1.0,
        )
        generator = SyntheticTraceGenerator(params)
        blocks0 = {r.address // 64 for r in generator.generate_thread(0)}
        blocks1 = {r.address // 64 for r in generator.generate_thread(1)}
        assert blocks0 & blocks1

    def test_footprint_tracks_shared_footprint_parameter(self):
        small = small_parameters(
            hot_fraction=0.0, shared_fraction=1.0, sequential_fraction=1.0,
            migration_fraction=0.0, shared_footprint_bytes=16 * 1024,
            references_per_thread=8000,
        )
        large = small_parameters(
            hot_fraction=0.0, shared_fraction=1.0, sequential_fraction=1.0,
            migration_fraction=0.0, shared_footprint_bytes=256 * 1024,
            references_per_thread=8000,
        )
        foot_small = SyntheticTraceGenerator(small).generate_thread(0).footprint_bytes()
        foot_large = SyntheticTraceGenerator(large).generate_thread(0).footprint_bytes()
        assert foot_large > foot_small

    def test_sequential_stream_has_spatial_locality(self):
        params = small_parameters(
            hot_fraction=0.0, shared_fraction=1.0, sequential_fraction=1.0,
            migration_fraction=0.0,
        )
        trace = SyntheticTraceGenerator(params).generate_thread(0)
        same_block = sum(
            1 for a, b in zip(trace.records, trace.records[1:])
            if a.address // 64 == b.address // 64
        )
        assert same_block / len(trace) > 0.7

    def test_all_addresses_word_aligned_and_in_known_regions(self):
        params = small_parameters()
        trace = SyntheticTraceGenerator(params).generate_thread(2)
        for record in trace:
            assert record.address % 8 == 0
            assert record.address >= SHARED_REGION_BASE


@settings(max_examples=20, deadline=None)
@given(
    hot=st.floats(min_value=0.0, max_value=1.0),
    shared=st.floats(min_value=0.0, max_value=1.0),
    writes=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_generator_never_crashes_on_valid_fractions(hot, shared, writes):
    params = small_parameters(
        hot_fraction=hot, shared_fraction=shared, write_fraction=writes,
        references_per_thread=50,
    )
    trace = SyntheticTraceGenerator(params).generate_thread(0)
    assert len(trace) == 50


class TestSuite:
    def test_eleven_applications(self):
        assert len(APPLICATION_NAMES) == 11
        assert set(APPLICATION_NAMES) == {
            "fft", "lu", "radix", "cholesky", "barnes", "fmm", "radiosity",
            "raytrace", "streamcluster", "blackscholes", "fluidanimate",
        }

    def test_class_binning_matches_table_6_1(self):
        assert set(APPLICATION_CLASSES[1]) == {"fft", "fmm", "cholesky", "fluidanimate"}
        assert set(APPLICATION_CLASSES[2]) == {"barnes", "lu", "radix", "radiosity"}
        assert set(APPLICATION_CLASSES[3]) == {"blackscholes", "streamcluster", "raytrace"}
        assert classes_consistent_with_specs()

    def test_application_class_lookup(self):
        assert application_class("fft") == 1
        assert application_class("lu") == 2
        assert application_class("raytrace") == 3
        with pytest.raises(KeyError):
            application_class("doom")

    def test_build_application_produces_one_trace_per_core(self):
        arch = scaled_architecture()
        workload = build_application("fft", arch, length_scale=0.05)
        assert workload.num_threads == arch.num_cores
        assert workload.total_references() > 0
        assert workload.name == "fft"

    def test_class1_has_larger_shared_footprint_than_class3(self):
        arch = scaled_architecture()
        class1 = build_application("fft", arch, length_scale=0.2)
        class3 = build_application("blackscholes", arch, length_scale=0.2)
        foot1 = sum(t.footprint_bytes() for t in class1.traces)
        foot3 = sum(t.footprint_bytes() for t in class3.traces)
        assert foot1 > foot3

    def test_length_scale_changes_trace_length(self):
        arch = scaled_architecture()
        short = build_application("lu", arch, length_scale=0.1)
        long = build_application("lu", arch, length_scale=0.3)
        assert long.total_references() > short.total_references()

    def test_build_suite_subset(self):
        arch = scaled_architecture()
        suite = build_suite(arch, length_scale=0.05, names=["fft", "lu"])
        assert set(suite) == {"fft", "lu"}

    def test_unknown_application_rejected(self):
        arch = scaled_architecture()
        with pytest.raises(KeyError):
            build_application("quake", arch)

    def test_specs_have_documented_problem_sizes(self):
        for spec in application_specs().values():
            assert spec.problem_size
            assert spec.suite in ("SPLASH-2", "PARSEC")
