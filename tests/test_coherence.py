"""Unit tests for the directory helpers and the MESI protocol engine."""

from __future__ import annotations

import pytest

from repro.coherence.directory import Directory
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.mem.line import DirectoryLine, L3State, MESIState


def directory_line() -> DirectoryLine:
    line = DirectoryLine()
    line.fill(tag=1, state=MESIState.SHARED, cycle=0)
    return line


class TestDirectoryHelpers:
    def test_first_reader_gets_exclusivity(self):
        line = directory_line()
        assert Directory.record_reader(line, core=3)
        assert line.sharers == {3}

    def test_second_reader_is_shared(self):
        line = directory_line()
        Directory.record_reader(line, core=3)
        assert not Directory.record_reader(line, core=5)
        assert line.sharers == {3, 5}

    def test_record_writer_claims_sole_ownership(self):
        line = directory_line()
        Directory.record_reader(line, core=1)
        Directory.record_reader(line, core=2)
        Directory.record_writer(line, core=2)
        assert line.owner == 2
        assert line.sharers == {2}

    def test_clear_owner_demotes_to_sharer(self):
        line = directory_line()
        Directory.record_writer(line, core=7)
        owner = Directory.clear_owner(line)
        assert owner == 7
        assert line.owner is None
        assert 7 in line.sharers

    def test_remove_core(self):
        line = directory_line()
        Directory.record_writer(line, core=4)
        Directory.remove_core(line, 4)
        assert line.owner is None
        assert line.sharers == set()

    def test_sharers_other_than(self):
        line = directory_line()
        Directory.record_reader(line, core=1)
        Directory.record_reader(line, core=2)
        Directory.record_writer(line, core=3)
        assert Directory.sharers_other_than(line, 3) == set()
        line.sharers = {1, 2, 3}
        assert Directory.sharers_other_than(line, 1) == {2, 3}


@pytest.fixture
def hierarchy(tiny_architecture) -> CacheHierarchy:
    return CacheHierarchy(tiny_architecture)


ADDR = 0x0001_0000


class TestProtocolReadWrite:
    def test_read_miss_fills_all_levels(self, hierarchy):
        latency = hierarchy.read(0, ADDR, cycle=0)
        assert latency >= hierarchy.architecture.dram_access_cycles
        caches = hierarchy.cores[0]
        block = hierarchy.protocol.block_of(ADDR)
        assert caches.l1d.probe(block) is not None
        assert caches.l2.probe(block) is not None
        bank = hierarchy.protocol.home_bank(block)
        l3_line = bank.cache.probe(block)
        assert l3_line is not None and l3_line.valid
        assert 0 in l3_line.sharers
        assert hierarchy.counters["dram_accesses"] == 1

    def test_read_hit_is_cheap_and_causes_no_dram(self, hierarchy):
        hierarchy.read(0, ADDR, cycle=0)
        before = hierarchy.counters["dram_accesses"]
        latency = hierarchy.read(0, ADDR, cycle=100)
        assert latency == hierarchy.architecture.l1d.access_cycles
        assert hierarchy.counters["dram_accesses"] == before

    def test_write_makes_l2_modified_but_l1_stays_clean(self, hierarchy):
        hierarchy.write(0, ADDR, cycle=0)
        block = hierarchy.protocol.block_of(ADDR)
        l2_line = hierarchy.cores[0].l2.probe(block)
        assert l2_line is not None and l2_line.state is MESIState.MODIFIED
        l1_line = hierarchy.cores[0].l1d.probe(block)
        # Write-through, write-no-allocate L1: either absent or clean.
        assert l1_line is None or not l1_line.dirty

    def test_write_after_shared_read_invalidates_other_copies(self, hierarchy):
        hierarchy.read(0, ADDR, cycle=0)
        hierarchy.read(1, ADDR, cycle=10)
        block = hierarchy.protocol.block_of(ADDR)
        assert hierarchy.cores[0].l2.probe(block) is not None
        hierarchy.write(1, ADDR, cycle=20)
        # Core 0's copy has been invalidated by the directory.
        line0 = hierarchy.cores[0].l2.probe(block)
        assert line0 is None or not line0.valid
        bank = hierarchy.protocol.home_bank(block)
        l3_line = bank.cache.probe(block)
        assert l3_line.owner == 1
        assert hierarchy.counters["coherence_invalidations"] >= 1

    def test_read_after_remote_write_recalls_dirty_data(self, hierarchy):
        hierarchy.write(0, ADDR, cycle=0)
        hierarchy.read(1, ADDR, cycle=100)
        block = hierarchy.protocol.block_of(ADDR)
        bank = hierarchy.protocol.home_bank(block)
        l3_line = bank.cache.probe(block)
        # The owner's dirty data was written back into the L3 (now dirty).
        assert l3_line.l3_state is L3State.DIRTY
        assert l3_line.owner is None
        owner_l2 = hierarchy.cores[0].l2.probe(block)
        assert owner_l2 is not None and owner_l2.state is MESIState.SHARED

    def test_instruction_fetch_uses_l1i(self, hierarchy):
        hierarchy.instruction_fetch(0, ADDR, cycle=0)
        block = hierarchy.protocol.block_of(ADDR)
        assert hierarchy.cores[0].l1i.probe(block) is not None
        assert hierarchy.cores[0].l1d.probe(block) is None

    def test_inclusion_holds_after_mixed_traffic(self, hierarchy):
        for i in range(64):
            core = i % 4
            address = ADDR + i * 64 * 3
            if i % 3 == 0:
                hierarchy.write(core, address, cycle=i * 10)
            else:
                hierarchy.read(core, address, cycle=i * 10)
        assert hierarchy.check_inclusion() == []

    def test_home_bank_is_static_interleaving(self, hierarchy):
        arch = hierarchy.architecture
        for block_index in range(64):
            block = block_index * arch.line_bytes
            bank = hierarchy.protocol.home_bank(block)
            assert bank.bank_id == block_index % arch.num_l3_banks


class TestPolicyEntryPoints:
    def test_policy_invalidate_l3_back_invalidates_and_writes_back(self, hierarchy):
        hierarchy.write(0, ADDR, cycle=0)
        block = hierarchy.protocol.block_of(ADDR)
        bank = hierarchy.protocol.home_bank(block)
        result = bank.cache.lookup(block)
        dram_before = hierarchy.counters["dram_writes"]
        hierarchy.policy_invalidate(
            "l3", bank.bank_id, result.set_idx, result.line, cycle=100
        )
        assert not result.line.valid
        # The modified data held above was flushed to DRAM.
        assert hierarchy.counters["dram_writes"] == dram_before + 1
        l2_line = hierarchy.cores[0].l2.probe(block)
        assert l2_line is None or not l2_line.valid
        assert hierarchy.check_inclusion() == []

    def test_policy_writeback_l3_cleans_line(self, hierarchy):
        hierarchy.write(0, ADDR, cycle=0)
        hierarchy.read(1, ADDR, cycle=10)  # forces write-back into L3 (dirty)
        block = hierarchy.protocol.block_of(ADDR)
        bank = hierarchy.protocol.home_bank(block)
        result = bank.cache.lookup(block)
        assert result.line.dirty
        dram_before = hierarchy.counters["dram_writes"]
        hierarchy.policy_writeback("l3", bank.bank_id, result.set_idx, result.line, 50)
        assert result.line.valid and not result.line.dirty
        assert hierarchy.counters["dram_writes"] == dram_before + 1

    def test_policy_invalidate_l2_writes_dirty_data_down(self, hierarchy):
        hierarchy.write(0, ADDR, cycle=0)
        block = hierarchy.protocol.block_of(ADDR)
        result = hierarchy.cores[0].l2.lookup(block)
        assert result.line.state is MESIState.MODIFIED
        hierarchy.policy_invalidate("l2", 0, result.set_idx, result.line, cycle=50)
        assert not result.line.valid
        bank = hierarchy.protocol.home_bank(block)
        assert bank.cache.probe(block).l3_state is L3State.DIRTY
        assert hierarchy.check_inclusion() == []

    def test_policy_invalidate_l1_is_silent(self, hierarchy):
        hierarchy.read(0, ADDR, cycle=0)
        block = hierarchy.protocol.block_of(ADDR)
        result = hierarchy.cores[0].l1d.lookup(block)
        dram_before = hierarchy.counters["dram_accesses"]
        hierarchy.policy_invalidate("l1d", 0, result.set_idx, result.line, cycle=10)
        assert not result.line.valid
        assert hierarchy.counters["dram_accesses"] == dram_before

    def test_flush_dirty_writes_everything_to_dram(self, hierarchy):
        for i in range(8):
            hierarchy.write(i % 4, ADDR + i * 64, cycle=i)
        hierarchy.flush_dirty(cycle=1000)
        assert hierarchy.dirty_lines()["l2"] == 0
        assert hierarchy.dirty_lines()["l3"] == 0
        assert hierarchy.counters["dram_writes"] >= 8
