"""Tests for the result-store maintenance tooling (ls / gc / verify)."""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign.jobs import Job
from repro.campaign.maintenance import store_gc, store_ls, store_verify
from repro.campaign.store import ResultStore
from repro.cli import main as cli_main
from repro.config.parameters import SimulationConfig
from repro.core.results import SimulationResult
from repro.energy.accounting import EnergyBreakdown
from repro.workloads.suite import WorkloadRequest
from tests.conftest import make_tiny_architecture


def make_job(name: str = "fft") -> Job:
    architecture = make_tiny_architecture()
    return Job(
        workload=WorkloadRequest(name, length_scale=0.1),
        config=SimulationConfig.sram(architecture),
    )


def make_result(application: str = "fft") -> SimulationResult:
    return SimulationResult(
        config=None,
        application=application,
        execution_cycles=123,
        busy_core_cycles=45,
        counters={"l1d_hits": 7},
        energy=EnergyBreakdown(
            by_level={"l1": 1.0}, by_component={"dynamic": 1.0}, system={}
        ),
        per_core_finish_cycles=[123],
        restored_label="SRAM",
    )


@pytest.fixture
def populated_store(tmp_path):
    store = ResultStore(tmp_path / "store")
    jobs = [make_job("fft"), make_job("barnes")]
    for job in jobs:
        store.put(job, make_result(job.application))
    return store, jobs


class TestScanAndLs:
    def test_ls_lists_every_entry(self, populated_store):
        store, jobs = populated_store
        report = store_ls(store)
        assert len(report.entries) == 2
        assert all(entry.ok for entry in report.entries)
        assert {entry.application for entry in report.entries} == {"fft", "barnes"}
        assert {entry.key for entry in report.entries} == {j.key() for j in jobs}

    def test_missing_directory_reports_empty(self, tmp_path):
        report = store_ls(tmp_path / "nope")
        assert report.entries == [] and report.orphans == []


class TestVerify:
    def test_intact_store_verifies(self, populated_store):
        store, _ = populated_store
        report = store_verify(store)
        assert report.ok
        assert not report.problems

    def test_tampered_payload_fails_hash_check(self, populated_store):
        store, jobs = populated_store
        path = store.path_for(jobs[0].key())
        data = json.loads(path.read_text())
        data["hash_payload"]["workload"]["length_scale"] = 0.9
        path.write_text(json.dumps(data))
        report = store_verify(store)
        assert len(report.problems) == 1
        assert "content hash mismatch" in report.problems[0].problem

    def test_renamed_entry_fails_key_check(self, populated_store):
        store, jobs = populated_store
        path = store.path_for(jobs[0].key())
        path.rename(store.root / ("0" * 64 + ".json"))
        report = store_verify(store)
        assert len(report.problems) == 1
        assert "does not match filename" in report.problems[0].problem

    def test_corrupt_result_detected(self, populated_store):
        store, jobs = populated_store
        path = store.path_for(jobs[0].key())
        data = json.loads(path.read_text())
        del data["result"]["counters"]
        path.write_text(json.dumps(data))
        report = store_verify(store)
        assert len(report.problems) == 1
        assert "corrupt result" in report.problems[0].problem


class TestGc:
    def test_gc_removes_orphans_and_corrupt_entries(self, populated_store):
        store, jobs = populated_store
        orphan = store.root / ".deadbeef-1234.tmp"
        orphan.write_text("partial write")
        corrupt = store.root / ("f" * 64 + ".json")
        corrupt.write_text("{not json")
        report = store_gc(store)
        assert not orphan.exists()
        assert not corrupt.exists()
        assert sorted(p.name for p in report.removed) == sorted(
            [orphan.name, corrupt.name]
        )
        # The two healthy entries survive and still verify.
        assert store_verify(store).ok

    def test_gc_dry_run_removes_nothing(self, populated_store):
        store, _ = populated_store
        orphan = store.root / ".leftover.tmp"
        orphan.write_text("x")
        report = store_gc(store, dry_run=True)
        assert orphan.exists()
        assert [p.name for p in report.removed] == [orphan.name]

    def test_gc_keeps_legacy_entries_without_hash_payload(self, populated_store):
        store, jobs = populated_store
        path = store.path_for(jobs[0].key())
        data = json.loads(path.read_text())
        del data["hash_payload"]
        path.write_text(json.dumps(data))
        store_gc(store)
        assert path.exists()
        # ...but verify flags them as unverifiable.
        report = store_verify(store)
        assert any("no hash payload" in e.problem for e in report.problems)


class TestCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = cli_main(list(argv), out=out)
        return code, out.getvalue()

    def test_store_ls(self, populated_store):
        store, _ = populated_store
        code, text = self.run_cli("store", "ls", str(store.root))
        assert code == 0
        assert "2 entries" in text
        assert "fft" in text and "barnes" in text

    def test_store_verify_ok_and_failing(self, populated_store):
        store, jobs = populated_store
        code, text = self.run_cli("store", "verify", str(store.root))
        assert code == 0 and "2 ok" in text
        path = store.path_for(jobs[0].key())
        path.write_text("garbage")
        code, text = self.run_cli("store", "verify", str(store.root))
        assert code == 1
        assert "FAIL" in text

    def test_store_gc(self, populated_store):
        store, _ = populated_store
        (store.root / ".junk.tmp").write_text("x")
        code, text = self.run_cli("store", "gc", str(store.root))
        assert code == 0
        assert "removed 1 files" in text
        assert not (store.root / ".junk.tmp").exists()

    def test_store_missing_directory_errors(self, tmp_path):
        code, _ = self.run_cli("store", "ls", str(tmp_path / "absent"))
        assert code == 2
