"""Shared fixtures for the test suite.

The fixtures provide small-but-real configurations: the scaled architecture
(so full simulations finish in seconds) and a miniature architecture (for
tests that walk every cache line).
"""

from __future__ import annotations

import pytest

from repro.config.parameters import (
    ArchitectureConfig,
    CacheGeometry,
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture


def make_tiny_architecture() -> ArchitectureConfig:
    """A deliberately tiny chip for line-level tests (still 16 cores)."""
    line = 64
    return ArchitectureConfig(
        num_cores=16,
        frequency_hz=1.0e9,
        l1i=CacheGeometry(
            name="l1i", size_bytes=1024, associativity=2, line_bytes=line,
            access_cycles=1, write_back=False, num_refresh_groups=2,
            sentry_group_size=1,
        ),
        l1d=CacheGeometry(
            name="l1d", size_bytes=1024, associativity=2, line_bytes=line,
            access_cycles=1, write_back=False, num_refresh_groups=2,
            sentry_group_size=1,
        ),
        l2=CacheGeometry(
            name="l2", size_bytes=4096, associativity=4, line_bytes=line,
            access_cycles=2, write_back=True, num_refresh_groups=2,
            sentry_group_size=4,
        ),
        l3_bank=CacheGeometry(
            name="l3", size_bytes=8192, associativity=4, line_bytes=line,
            access_cycles=4, write_back=True, num_refresh_groups=4,
            sentry_group_size=16,
        ),
        num_l3_banks=16,
        dram_access_cycles=40,
        mesh_width=4,
        mesh_height=4,
    )


@pytest.fixture
def tiny_architecture() -> ArchitectureConfig:
    """Tiny 16-core architecture for fast, line-level tests."""
    return make_tiny_architecture()


@pytest.fixture
def scaled_arch() -> ArchitectureConfig:
    """The scaled preset architecture used by the experiments."""
    return scaled_architecture()


def make_refresh_config(
    architecture: ArchitectureConfig,
    timing: TimingPolicyKind = TimingPolicyKind.REFRINT,
    data: DataPolicySpec | None = None,
    retention_cycles: int = 1000,
) -> RefreshConfig:
    """A refresh configuration sized for the given architecture."""
    margin = RefreshConfig.derive_sentry_margin(
        architecture.l3_bank.num_lines, retention_cycles
    )
    return RefreshConfig(
        retention_cycles=retention_cycles,
        sentry_margin_cycles=margin,
        timing_policy=timing,
        l3_data_policy=data if data is not None else DataPolicySpec.writeback(8, 8),
    )


@pytest.fixture
def tiny_edram_config(tiny_architecture) -> SimulationConfig:
    """An eDRAM simulation config on the tiny architecture."""
    return SimulationConfig.edram(
        make_refresh_config(tiny_architecture), tiny_architecture
    )


@pytest.fixture
def tiny_sram_config(tiny_architecture) -> SimulationConfig:
    """The SRAM baseline config on the tiny architecture."""
    return SimulationConfig.sram(tiny_architecture)
