"""Trace-generator provenance: job hashes and the result-store stamp.

The numpy and scalar trace generators draw different (equally valid)
streams from the same workload recipe, so results from the two
environments must never alias.  Two independent guards enforce that:

* the provenance is part of every job's content hash, so a campaign in one
  environment can never *reuse* a result computed in the other;
* a :class:`~repro.campaign.store.ResultStore` stamps itself with the
  provenance of its first writer and refuses writes (and campaign resumes)
  from the other environment, so the mixing attempt fails loudly instead
  of silently recomputing every point into a mongrel store.
"""

from __future__ import annotations

import json

import pytest

import repro.campaign.jobs as jobs_module
from repro.campaign.engine import run_campaign
from repro.campaign.jobs import Job
from repro.campaign.maintenance import store_gc, store_verify
from repro.campaign.store import (
    PROVENANCE_FILE,
    ResultStore,
    StoreProvenanceError,
)
from repro.config.parameters import SimulationConfig
from repro.core.sweep import PolicyPoint
from repro.workloads.suite import WorkloadRequest
from repro.workloads.synthetic import TRACE_GENERATOR_PROVENANCE

OTHER = "scalar" if TRACE_GENERATOR_PROVENANCE == "numpy" else "numpy"


def make_job(tiny_architecture) -> Job:
    return Job(
        workload=WorkloadRequest("fft", length_scale=0.01, seed=3),
        config=SimulationConfig.sram(tiny_architecture),
    )


class TestJobHash:
    def test_hash_payload_records_provenance(self, tiny_architecture):
        payload = make_job(tiny_architecture).hash_payload()
        assert payload["trace_generator"] == TRACE_GENERATOR_PROVENANCE

    def test_key_differs_across_environments(self, tiny_architecture, monkeypatch):
        here = make_job(tiny_architecture).key()
        monkeypatch.setattr(jobs_module, "TRACE_GENERATOR_PROVENANCE", OTHER)
        there = make_job(tiny_architecture).key()
        assert here != there


class TestStoreStamp:
    def test_first_put_stamps_the_store(self, tiny_architecture, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.check_provenance()
        marker = json.loads((store.root / PROVENANCE_FILE).read_text())
        assert marker == {"trace_generator": TRACE_GENERATOR_PROVENANCE}
        # Same environment: idempotent.
        ResultStore(store.root).check_provenance()

    def test_other_environment_is_refused(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / PROVENANCE_FILE).write_text(
            json.dumps({"trace_generator": OTHER})
        )
        with pytest.raises(StoreProvenanceError, match="separate store"):
            ResultStore(root).check_provenance()

    def test_corrupt_marker_is_refused_not_restamped(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / PROVENANCE_FILE).write_text('{"trace_generator": tru')
        with pytest.raises(StoreProvenanceError, match="unreadable"):
            ResultStore(root).check_provenance()
        # The damaged marker must survive untouched for manual inspection.
        assert (root / PROVENANCE_FILE).read_text() == '{"trace_generator": tru'

    @pytest.mark.parametrize("body", ["{}", "null", '{"generator": "numpy"}'])
    def test_wrong_shape_marker_is_refused_not_restamped(self, tmp_path, body):
        root = tmp_path / "store"
        root.mkdir()
        (root / PROVENANCE_FILE).write_text(body)
        with pytest.raises(StoreProvenanceError, match="malformed"):
            ResultStore(root).check_provenance()
        assert (root / PROVENANCE_FILE).read_text() == body

    def test_campaign_fails_fast_on_mixed_store(self, tiny_architecture, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / PROVENANCE_FILE).write_text(
            json.dumps({"trace_generator": OTHER})
        )
        with pytest.raises(StoreProvenanceError):
            run_campaign(
                requests=[WorkloadRequest("fft", length_scale=0.01, seed=3)],
                points=[],
                architecture=tiny_architecture,
                store=root,
            )

    def test_marker_is_invisible_to_entry_iteration(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.check_provenance()
        assert list(store.keys()) == []
        assert len(store) == 0

    def test_marker_survives_maintenance(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.check_provenance()
        report = store_verify(store)
        assert report.ok
        assert report.entries == []
        store_gc(store)
        assert (store.root / PROVENANCE_FILE).exists()


class TestEndToEnd:
    def test_campaign_store_roundtrip_with_provenance(
        self, tiny_architecture, tmp_path
    ):
        """run -> resume -> verify against a stamped store."""
        requests = [WorkloadRequest("fft", length_scale=0.01, seed=3)]
        points: list[PolicyPoint] = []
        store = ResultStore(tmp_path / "store")
        _, first = run_campaign(
            requests=requests, points=points,
            architecture=tiny_architecture, store=store,
        )
        assert first.executed == 1
        _, resumed = run_campaign(
            requests=requests, points=points,
            architecture=tiny_architecture, store=store, resume=True,
        )
        assert resumed.reused == 1
        assert store_verify(store).ok
