"""Unit tests for the Periodic and Refrint refresh controllers."""

from __future__ import annotations

import pytest

from repro.config.parameters import (
    DataPolicySpec,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.refresh.controller import build_refresh_controllers, level_refresh_config
from repro.refresh.periodic import PeriodicRefreshController
from repro.refresh.policies import ValidPolicy
from repro.refresh.refrint import RefrintRefreshController
from repro.utils.events import EventQueue
from tests.conftest import make_refresh_config

ADDR = 0x0002_0000


def build(hierarchy_config, timing, data=None, retention=1000):
    """Helper: hierarchy + event queue + controllers for a config."""
    architecture = hierarchy_config
    refresh = make_refresh_config(
        architecture, timing=timing, data=data, retention_cycles=retention
    )
    config = SimulationConfig.edram(refresh, architecture)
    hierarchy = CacheHierarchy(architecture)
    events = EventQueue()
    controllers = build_refresh_controllers(hierarchy, config, events)
    return hierarchy, events, controllers, config


class TestControllerConstruction:
    def test_one_controller_per_cache_instance(self, tiny_architecture):
        _, _, controllers, _ = build(tiny_architecture, TimingPolicyKind.REFRINT)
        # 16 cores x (l1i, l1d, l2) + 16 L3 banks
        assert len(controllers) == 16 * 3 + 16
        assert all(isinstance(c, RefrintRefreshController) for c in controllers)

    def test_periodic_controllers_built_for_periodic_timing(self, tiny_architecture):
        _, _, controllers, _ = build(tiny_architecture, TimingPolicyKind.PERIODIC)
        assert all(isinstance(c, PeriodicRefreshController) for c in controllers)

    def test_sram_builds_no_controllers(self, tiny_architecture):
        config = SimulationConfig.sram(tiny_architecture)
        hierarchy = CacheHierarchy(tiny_architecture)
        assert build_refresh_controllers(hierarchy, config, EventQueue()) == []

    def test_l1_l2_use_valid_policy_and_l3_uses_configured(self, tiny_architecture):
        _, _, controllers, _ = build(
            tiny_architecture, TimingPolicyKind.REFRINT,
            data=DataPolicySpec.writeback(4, 4),
        )
        by_level = {}
        for controller in controllers:
            by_level.setdefault(controller.level, controller)
        assert type(by_level["l1d"].policy).__name__ == "ValidPolicy"
        assert type(by_level["l2"].policy).__name__ == "ValidPolicy"
        assert type(by_level["l3"].policy).__name__ == "WritebackPolicy"

    def test_paper_geometry_keeps_one_retention_for_all_levels(self):
        from repro.config.presets import paper_architecture

        arch = paper_architecture()
        refresh = make_refresh_config(arch, retention_cycles=50_000)
        config = SimulationConfig.edram(refresh, arch)
        hierarchy = CacheHierarchy(arch)
        for level, _, cache in hierarchy.all_caches():
            level_config = level_refresh_config(config, level, cache)
            assert level_config.retention_cycles == 50_000

    def test_scaled_geometry_stretches_l1_l2_retention(self, scaled_arch):
        refresh = make_refresh_config(scaled_arch, retention_cycles=1562)
        config = SimulationConfig.edram(refresh, scaled_arch)
        hierarchy = CacheHierarchy(scaled_arch)
        rates = {}
        for level, _, cache in hierarchy.all_caches():
            level_config = level_refresh_config(config, level, cache)
            rates[level] = cache.num_lines / level_config.retention_cycles
        # Refresh rate (lines/cycle) per instance must match the paper
        # geometry at 50 us: L3 bank 16384/50000, L2 4096/50000, L1D 512/50000.
        assert rates["l3"] == pytest.approx(16384 / 50_000, rel=0.05)
        assert rates["l2"] == pytest.approx(4096 / 50_000, rel=0.10)
        assert rates["l1d"] == pytest.approx(512 / 50_000, rel=0.10)


class TestPeriodicController:
    def test_all_policy_refreshes_every_line_once_per_period(self, tiny_architecture):
        hierarchy, events, controllers, _ = build(
            tiny_architecture, TimingPolicyKind.PERIODIC,
            data=DataPolicySpec.all_lines(), retention=400,
        )
        l3_controllers = [c for c in controllers if c.level == "l3"]
        for controller in l3_controllers:
            controller.start(0)
        events.run(until=399)
        total_l3_lines = sum(c.cache.num_lines for c in l3_controllers)
        assert hierarchy.counters["l3_refreshes"] == total_l3_lines

    def test_valid_policy_skips_invalid_lines(self, tiny_architecture):
        hierarchy, events, controllers, _ = build(
            tiny_architecture, TimingPolicyKind.PERIODIC,
            data=DataPolicySpec.valid(), retention=400,
        )
        hierarchy.read(0, ADDR, cycle=0)
        for controller in controllers:
            if controller.level == "l3":
                controller.start(0)
        events.run(until=399)
        # Only the single valid L3 line is refreshed.
        assert hierarchy.counters["l3_refreshes"] == 1

    def test_periodic_pass_blocks_its_refresh_group(self, tiny_architecture):
        hierarchy, events, controllers, _ = build(
            tiny_architecture, TimingPolicyKind.PERIODIC,
            data=DataPolicySpec.all_lines(), retention=400,
        )
        bank_controller = next(c for c in controllers if c.level == "l3")
        bank_controller.start(0)
        events.run(until=0)
        cache = bank_controller.cache
        assert max(cache.group_busy_until) > 0

    def test_dirty_policy_invalidates_clean_lines(self, tiny_architecture):
        hierarchy, events, controllers, _ = build(
            tiny_architecture, TimingPolicyKind.PERIODIC,
            data=DataPolicySpec.dirty(), retention=400,
        )
        hierarchy.read(0, ADDR, cycle=0)
        block = hierarchy.protocol.block_of(ADDR)
        bank = hierarchy.protocol.home_bank(block)
        for controller in controllers:
            if controller.level == "l3":
                controller.start(0)
        events.run(until=399)
        line = bank.cache.probe(block)
        assert line is None or not line.valid
        assert hierarchy.counters["l3_policy_invalidations"] >= 1
        assert hierarchy.check_inclusion() == []


class TestSubclassedPolicies:
    """Plugged-in (subclassed) policies must keep the generic decide() walk.

    The staged fast paths dispatch on exact policy types; a downstream
    subclass with an overridden decide() has to see every line of a
    periodic group (valid or not) and must not be routed through the bulk
    slice path that never consults the policy.
    """

    class CountingValidPolicy(ValidPolicy):
        def __init__(self):
            self.calls = 0

        def decide(self, line):
            self.calls += 1
            return super().decide(line)

    def test_periodic_walk_consults_subclassed_policy_per_line(self, tiny_architecture):
        from repro.hierarchy.hierarchy import CacheHierarchy
        from repro.refresh.periodic import PeriodicRefreshController
        from repro.utils.events import EventQueue

        hierarchy = CacheHierarchy(tiny_architecture)
        events = EventQueue()
        bank = hierarchy.banks[0]
        policy = self.CountingValidPolicy()
        refresh = make_refresh_config(tiny_architecture, retention_cycles=400)
        controller = PeriodicRefreshController(
            "l3", 0, bank.cache, policy, refresh, hierarchy, events
        )
        assert controller._policy_kind == "custom"
        controller.start(0)
        events.run(until=399)
        # One decide() per line per retention period, invalid lines included.
        assert policy.calls == bank.cache.num_lines

    def test_refrint_uses_generic_handler_for_subclassed_policy(self, tiny_architecture):
        from repro.hierarchy.hierarchy import CacheHierarchy
        from repro.refresh.refrint import RefrintRefreshController
        from repro.utils.events import EventQueue

        hierarchy = CacheHierarchy(tiny_architecture)
        events = EventQueue()
        bank = hierarchy.banks[0]
        refresh = make_refresh_config(tiny_architecture, retention_cycles=400)
        controller = RefrintRefreshController(
            "l3", 0, bank.cache, self.CountingValidPolicy(), refresh,
            hierarchy, events,
        )
        controller.start(0)
        assert controller._handler == controller._on_group_interrupt


class TestRefrintController:
    def test_valid_line_is_refreshed_before_it_expires(self, tiny_architecture):
        hierarchy, events, controllers, config = build(
            tiny_architecture, TimingPolicyKind.REFRINT,
            data=DataPolicySpec.valid(), retention=500,
        )
        hierarchy.read(0, ADDR, cycle=0)
        for controller in controllers:
            controller.start(0)
        events.run(until=5000)
        assert hierarchy.counters.get("decay_violations") == 0
        assert hierarchy.counters["l3_refreshes"] >= 5

    def test_refrint_refreshes_fewer_lines_than_periodic_all(self, tiny_architecture):
        # One valid line in the whole L3: Refrint-Valid refreshes only it,
        # Periodic-All refreshes every line in every bank.
        results = {}
        for timing, data in (
            (TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()),
            (TimingPolicyKind.REFRINT, DataPolicySpec.valid()),
        ):
            hierarchy, events, controllers, _ = build(
                tiny_architecture, timing, data=data, retention=500,
            )
            hierarchy.read(0, ADDR, cycle=0)
            for controller in controllers:
                if controller.level == "l3":
                    controller.start(0)
            events.run(until=2000)
            results[timing] = hierarchy.counters["l3_refreshes"]
        assert results[TimingPolicyKind.REFRINT] < results[TimingPolicyKind.PERIODIC]

    def test_wb_policy_eventually_invalidates_idle_line(self, tiny_architecture):
        hierarchy, events, controllers, _ = build(
            tiny_architecture, TimingPolicyKind.REFRINT,
            data=DataPolicySpec.writeback(1, 1), retention=500,
        )
        hierarchy.write(0, ADDR, cycle=0)
        block = hierarchy.protocol.block_of(ADDR)
        bank = hierarchy.protocol.home_bank(block)
        for controller in controllers:
            if controller.level == "l3":
                controller.start(0)
        # After enough sentry periods the dirty line is written back and
        # then invalidated (1 refresh in each state).
        events.run(until=5000)
        line = bank.cache.probe(block)
        assert line is None or not line.valid
        assert hierarchy.counters["dram_writes"] >= 1
        assert hierarchy.check_inclusion() == []

    def test_accessed_line_is_not_invalidated(self, tiny_architecture):
        hierarchy, events, controllers, _ = build(
            tiny_architecture, TimingPolicyKind.REFRINT,
            data=DataPolicySpec.writeback(1, 1), retention=500,
        )
        block = hierarchy.protocol.block_of(ADDR)
        bank = hierarchy.protocol.home_bank(block)
        for controller in controllers:
            if controller.level == "l3":
                controller.start(0)
        # Touch the line at the L3 every 300 cycles (each miss reaches the
        # bank because a different core reads it each time).
        for step in range(20):
            hierarchy.read(step % 16, ADDR, cycle=events.now)
            events.run(until=(step + 1) * 300)
        line = bank.cache.probe(block)
        assert line is not None and line.valid
