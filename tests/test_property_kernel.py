"""Property pins for the batch-replay kernel (see :mod:`repro.kernels`).

Two layers:

* Scan-twin equivalence: :func:`repro.kernels.columnar.scan_columnar` and
  :func:`repro.kernels.jit.scan_loop` implement one shared contract as
  ufunc chains and as a fused loop.  Hypothesis drives both over random
  trace columns, hit maps and fetch state and compares the full result
  tuple entry for entry -- retire counts, times, frontier, RLE touch
  lists, tallies and the upgrade plan.

* Kernel-vs-scalar equivalence: a kernel batch must equal n iterations of
  :meth:`~repro.cpu.core.Core.step_fast`, which in turn equals event
  replay.  Hypothesis-built random workloads run through the simulator
  under every kernel mode and the canonical JSON results are compared
  byte for byte.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture, scaled_retention_cycles
from repro.core.simulator import RefrintSimulator
from repro.cpu.trace import MemoryOperation, TraceRecord, TraceStream
from repro.mem.arrays import HAVE_NUMPY
from repro.workloads.suite import ApplicationWorkload, build_application

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the batch kernels stage into numpy buffers"
)

if HAVE_NUMPY:
    import numpy as np

    from repro.kernels.columnar import scan_columnar
    from repro.kernels.jit import scan_loop


LINE = 64


@st.composite
def scan_cases(draw):
    """One full argument set for the shared scan contract."""
    m = draw(st.integers(min_value=1, max_value=12))
    map_blocks = np.array(
        sorted(draw(st.sets(st.integers(0, 40), min_size=m, max_size=m)))
    ) * LINE
    map_l1d = np.array(
        draw(st.lists(st.integers(-1, 30), min_size=m, max_size=m))
    )
    map_l2 = np.array(
        draw(st.lists(st.integers(-1, 60), min_size=m, max_size=m))
    )
    map_wok = np.array(
        draw(st.lists(st.integers(0, 2), min_size=m, max_size=m))
    )
    w = draw(st.integers(min_value=1, max_value=40))
    # Mostly mapped blocks, occasionally strays outside the map.
    blocks = np.array(
        [
            map_blocks[draw(st.integers(0, m - 1))]
            if draw(st.booleans())
            else draw(st.integers(0, 41)) * LINE
            for _ in range(w)
        ]
    )
    writes = np.array(draw(st.lists(st.integers(0, 1), min_size=w, max_size=w)))
    gaps = np.array(draw(st.lists(st.integers(0, 40), min_size=w, max_size=w)))
    interval = draw(st.integers(min_value=1, max_value=8))
    nslots = draw(st.integers(min_value=1, max_value=8))
    code_idx = np.array(
        draw(st.lists(st.integers(-1, 10), min_size=nslots, max_size=nslots))
    )
    time = draw(st.integers(min_value=0, max_value=50))
    horizon = draw(
        st.one_of(st.just(-1), st.integers(min_value=0, max_value=150))
    )
    return dict(
        blocks=blocks,
        writes=writes,
        gaps_next=gaps,
        index=0,
        w=w,
        time=time,
        horizon=horizon,
        map_blocks=map_blocks,
        map_l1d=map_l1d,
        map_l2=map_l2,
        map_wok=map_wok,
        read_lat=draw(st.integers(1, 4)),
        write_lat=draw(st.integers(1, 6)),
        since=draw(st.integers(0, interval - 1)),
        interval=interval,
        slot=draw(st.integers(0, nslots - 1)),
        code_idx=code_idx,
    )


@given(case=scan_cases())
@settings(max_examples=300, deadline=None)
def test_scan_twins_agree_entry_for_entry(case):
    assert scan_columnar(**case) == scan_loop(**case)


def test_scan_twins_agree_on_empty_map():
    empty = np.empty(0, dtype=np.int64)
    case = dict(
        blocks=np.array([0, LINE]),
        writes=np.array([0, 1]),
        gaps_next=np.array([3, 0]),
        index=0,
        w=2,
        time=5,
        horizon=-1,
        map_blocks=empty,
        map_l1d=empty,
        map_l2=empty,
        map_wok=empty,
        read_lat=1,
        write_lat=2,
        since=0,
        interval=4,
        slot=0,
        code_idx=np.array([1, 2]),
    )
    assert scan_columnar(**case) == scan_loop(**case)
    assert scan_columnar(**case)[0] == 0


# -- simulator-level equivalence ----------------------------------------------


@pytest.fixture(scope="module")
def architecture():
    return scaled_architecture()


@pytest.fixture(scope="module")
def edram_config(architecture):
    retention = scaled_retention_cycles(50.0)
    refresh = RefreshConfig(
        retention_cycles=retention,
        sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        ),
        timing_policy=TimingPolicyKind.REFRINT,
        l3_data_policy=DataPolicySpec.writeback(32, 32),
    )
    return SimulationConfig.edram(refresh, architecture)


def _canonical(config, workload, kernel):
    simulator = RefrintSimulator(config, replay="runahead", kernel=kernel)
    result = simulator.run(workload)
    return (
        json.dumps(result.to_dict(), sort_keys=True),
        simulator.last_replay_stats,
    )


def _random_workload(architecture, spec_source, record_lists):
    traces = tuple(
        TraceStream(
            [
                TraceRecord(
                    address=0x2000_0000 + core * 0x4_0000 + block * LINE,
                    operation=(
                        MemoryOperation.WRITE if write else MemoryOperation.READ
                    ),
                    gap_instructions=gap,
                )
                for block, write, gap in records
            ],
            thread_id=core,
        )
        for core, records in enumerate(record_lists)
    )
    return ApplicationWorkload(spec=spec_source.spec, traces=traces)


@given(
    data=st.lists(
        st.lists(
            st.tuples(
                st.integers(0, 12),  # block (small pool: hits and reuse)
                st.booleans(),  # write
                st.integers(0, 30),  # trailing gap
            ),
            min_size=0,
            max_size=24,
        ),
        min_size=16,
        max_size=16,
    )
)
@settings(max_examples=8, deadline=None)
def test_kernel_equals_scalar_on_random_workloads(
    architecture, edram_config, data
):
    """kernel in {numpy, numba} == n x step_fast == kernel off, bytewise."""
    fft = build_application("fft", architecture, length_scale=0.01)
    workload = _random_workload(architecture, fft, data)
    baseline, _ = _canonical(edram_config, workload, "off")
    for kernel in ("numpy", "numba"):
        produced, stats = _canonical(edram_config, workload, kernel)
        assert produced == baseline, kernel
        assert stats.kernel_accesses <= stats.private_hit_references
        assert 0.0 <= stats.kernel_coverage <= 1.0


def test_kernel_counters_report_coverage(architecture, edram_config):
    """The real workload runs mostly through the kernel, exactly counted."""
    workload = build_application("fft", architecture, length_scale=0.05)
    _, off_stats = _canonical(edram_config, workload, "off")
    assert off_stats.kernel_batches == 0
    assert off_stats.kernel_accesses == 0
    assert off_stats.kernel_coverage == 0.0
    _, stats = _canonical(edram_config, workload, "numpy")
    assert stats.kernel_batches > 0
    assert stats.kernel_accesses > 0
    assert stats.slow_references == off_stats.slow_references
    assert stats.kernel_accesses <= stats.private_hit_references
    assert stats.kernel_coverage > 0.5
