"""Unit tests for counters and running statistics."""

from __future__ import annotations

import math

import pytest

from repro.utils.statistics import (
    Counter,
    RunningStat,
    WeightedAverage,
    arithmetic_mean,
    geometric_mean,
)


class TestCounter:
    def test_starts_at_zero(self):
        counter = Counter()
        assert counter.get("anything") == 0
        assert "anything" not in counter

    def test_add_and_get(self):
        counter = Counter()
        counter.add("hits")
        counter.add("hits", 4)
        assert counter["hits"] == 5
        assert "hits" in counter

    def test_initial_values(self):
        counter = Counter({"misses": 3})
        assert counter.get("misses") == 3

    def test_merge_sums_counts(self):
        left = Counter({"a": 1, "b": 2})
        right = Counter({"b": 3, "c": 4})
        left.merge(right)
        assert left.as_dict() == {"a": 1, "b": 5, "c": 4}

    def test_as_dict_is_a_snapshot(self):
        counter = Counter({"a": 1})
        snapshot = counter.as_dict()
        counter.add("a")
        assert snapshot == {"a": 1}


class TestRunningStat:
    def test_mean_and_variance(self):
        stat = RunningStat()
        stat.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stat.count == 8
        assert stat.mean == pytest.approx(5.0)
        assert stat.variance == pytest.approx(4.0)
        assert stat.stddev == pytest.approx(2.0)
        assert stat.minimum == 2.0
        assert stat.maximum == 9.0

    def test_empty_stat_has_zero_variance(self):
        stat = RunningStat()
        assert stat.variance == 0.0
        assert stat.stddev == 0.0


class TestWeightedAverage:
    def test_weighted_mean(self):
        avg = WeightedAverage()
        avg.add(1.0, weight=1.0)
        avg.add(3.0, weight=3.0)
        assert avg.value == pytest.approx(2.5)

    def test_empty_average_is_zero(self):
        assert WeightedAverage().value == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedAverage().add(1.0, weight=-1.0)


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_error_names_the_offending_value(self):
        with pytest.raises(ValueError, match=r"got -3\.0 at index 2"):
            geometric_mean([1.0, 2.0, -3.0, 4.0])
        with pytest.raises(ValueError, match=r"got 0 at index 0"):
            geometric_mean([0, 5.0])

    def test_geometric_mean_error_reports_first_offender(self):
        with pytest.raises(ValueError, match=r"at index 1"):
            geometric_mean([1.0, 0.0, -1.0])

    def test_geometric_mean_accepts_generators(self):
        assert geometric_mean(v for v in [1.0, 4.0]) == pytest.approx(2.0)

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_means_inequality(self):
        values = [1.0, 2.0, 8.0]
        assert geometric_mean(values) <= arithmetic_mean(values)
        assert math.isclose(
            geometric_mean([5.0] * 4), arithmetic_mean([5.0] * 4)
        )
