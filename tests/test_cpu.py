"""Unit tests for traces and the trace-replay core model."""

from __future__ import annotations

import pytest

from repro.cpu.core import Core
from repro.cpu.trace import MemoryOperation, TraceRecord, TraceStream
from repro.hierarchy.hierarchy import CacheHierarchy
from repro.utils.events import EventQueue


class TestTraceRecord:
    def test_fields(self):
        record = TraceRecord(address=0x100, operation=MemoryOperation.WRITE, gap_instructions=3)
        assert record.is_write
        assert record.gap_instructions == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(address=-1, operation=MemoryOperation.READ)
        with pytest.raises(ValueError):
            TraceRecord(address=0, operation=MemoryOperation.READ, gap_instructions=-1)


class TestTraceStream:
    def make_stream(self) -> TraceStream:
        records = [
            TraceRecord(0x000, MemoryOperation.READ, 2),
            TraceRecord(0x040, MemoryOperation.WRITE, 1),
            TraceRecord(0x000, MemoryOperation.READ, 0),
        ]
        return TraceStream(records, thread_id=5)

    def test_len_and_iteration(self):
        stream = self.make_stream()
        assert len(stream) == 3
        assert [record.address for record in stream] == [0x000, 0x040, 0x000]
        assert stream[1].is_write

    def test_statistics(self):
        stream = self.make_stream()
        assert stream.total_instructions() == 3 + 3
        assert stream.read_fraction() == pytest.approx(2 / 3)
        assert stream.footprint_bytes(64) == 2 * 64

    def test_empty_stream(self):
        stream = TraceStream([])
        assert len(stream) == 0
        assert stream.read_fraction() == 0.0


class TestCore:
    def run_core(self, architecture, records):
        hierarchy = CacheHierarchy(architecture)
        events = EventQueue()
        core = Core(0, TraceStream(records), hierarchy, events)
        core.start(0)
        events.run()
        return core, hierarchy

    def test_core_completes_its_trace(self, tiny_architecture):
        records = [
            TraceRecord(0x1000 + i * 64, MemoryOperation.READ, 2) for i in range(10)
        ]
        core, _ = self.run_core(tiny_architecture, records)
        assert core.finished
        assert core.stats.references_completed == 10
        assert core.stats.finish_cycle > 0

    def test_gap_instructions_advance_time(self, tiny_architecture):
        fast = [TraceRecord(0x1000, MemoryOperation.READ, 0) for _ in range(5)]
        slow = [TraceRecord(0x1000, MemoryOperation.READ, 50) for _ in range(5)]
        fast_core, _ = self.run_core(tiny_architecture, fast)
        slow_core, _ = self.run_core(tiny_architecture, slow)
        assert slow_core.stats.finish_cycle > fast_core.stats.finish_cycle
        assert slow_core.stats.instructions_executed == 250

    def test_instruction_fetch_energy_accounted(self, tiny_architecture):
        records = [TraceRecord(0x1000, MemoryOperation.READ, 10) for _ in range(20)]
        _, hierarchy = self.run_core(tiny_architecture, records)
        assert hierarchy.counters["l1i_reads"] >= 200
        assert hierarchy.counters["instructions"] == 200

    def test_writes_reach_the_l2(self, tiny_architecture):
        records = [TraceRecord(0x2000, MemoryOperation.WRITE, 0)]
        _, hierarchy = self.run_core(tiny_architecture, records)
        assert hierarchy.counters["l2_writes"] >= 1

    def test_stall_cycles_grow_with_misses(self, tiny_architecture):
        # Strided reads spanning far more than the L2 capacity.
        records = [
            TraceRecord(0x10000 + i * 4096, MemoryOperation.READ, 0) for i in range(50)
        ]
        core, _ = self.run_core(tiny_architecture, records)
        assert core.stats.stall_cycles > 50  # misses cost far more than hits

    def test_empty_trace_finishes_immediately(self, tiny_architecture):
        core, _ = self.run_core(tiny_architecture, [])
        assert core.finished
        assert core.stats.references_completed == 0

    def test_on_finish_callback(self, tiny_architecture):
        hierarchy = CacheHierarchy(tiny_architecture)
        events = EventQueue()
        seen = []
        core = Core(
            3,
            TraceStream([TraceRecord(0x40, MemoryOperation.READ, 0)]),
            hierarchy,
            events,
            on_finish=lambda cycle, c: seen.append((cycle, c.core_id)),
        )
        core.start(0)
        events.run()
        assert seen and seen[0][1] == 3

    def test_invalid_ifetch_interval_rejected(self, tiny_architecture):
        hierarchy = CacheHierarchy(tiny_architecture)
        with pytest.raises(ValueError):
            Core(0, TraceStream([]), hierarchy, EventQueue(), ifetch_interval=0)
