"""Tests for the counter-validation layer (:mod:`repro.validate`).

Three angles:

* the invariant engine holds on *real* runs of every configuration family
  (and its checks actually fire when a result is deliberately corrupted);
* the streaming anomaly scan walks a 100+-point synthetic campaign in
  bounded memory -- never materialising the sweep -- and flags exactly the
  grid point whose counters were corrupted;
* the campaign-level orchestration (:func:`validate_sweep`) plus its
  Markdown / JSON renderings.
"""

from __future__ import annotations

import pytest

from repro.campaign.jobs import enumerate_jobs
from repro.campaign.store import ResultStore
from repro.campaign.view import StoreSweep
from repro.config.parameters import (
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture, scaled_retention_cycles
from repro.core.results import SimulationResult
from repro.core.simulator import RefrintSimulator, ReplayStats
from repro.core.sweep import PolicyPoint, SweepResult
from repro.energy.accounting import EnergyBreakdown
from repro.noc.network import TorusNetwork
from repro.noc.topology import TorusTopology
from repro.validate import (
    check_replay_stats,
    check_result,
    render_markdown,
    as_json_dict,
    scan_sweep,
    validate_sweep,
)
from repro.workloads.suite import WorkloadRequest, build_application

LENGTH_SCALE = 0.05


def _edram_config(architecture, timing, data, retention_us=50.0):
    retention = scaled_retention_cycles(retention_us)
    refresh = RefreshConfig(
        retention_cycles=retention,
        sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        ),
        timing_policy=timing,
        l3_data_policy=data,
    )
    return SimulationConfig.edram(refresh, architecture)


@pytest.fixture(scope="module")
def arch():
    return scaled_architecture()


@pytest.fixture(scope="module")
def workload(arch):
    return build_application("fft", arch, length_scale=LENGTH_SCALE)


@pytest.fixture(scope="module")
def live_runs(arch, workload):
    """(config, result, replay stats) per configuration family, real runs."""
    configs = {
        "SRAM": SimulationConfig.sram(arch),
        "P.all": _edram_config(
            arch, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()
        ),
        "R.WB(32,32)": _edram_config(
            arch, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)
        ),
    }
    runs = {}
    for label, config in configs.items():
        simulator = RefrintSimulator(config)
        result = simulator.run(workload)
        runs[label] = (config, result, simulator.last_replay_stats)
    return runs


class TestInvariantEngine:
    @pytest.mark.parametrize("label", ["SRAM", "P.all", "R.WB(32,32)"])
    def test_live_runs_hold_every_invariant(self, live_runs, label):
        config, result, stats = live_runs[label]
        validation = check_result(result, config=config, replay_stats=stats)
        assert validation.ok, [
            (check.name, check.detail) for check in validation.violations
        ]
        assert len(validation.checks) > 20  # the engine actually ran

    def test_edram_runs_include_cadence_checks(self, live_runs):
        config, result, _ = live_runs["R.WB(32,32)"]
        names = {check.name for check in check_result(result, config=config).checks}
        assert "l3-sentry-interrupt-cadence" in names
        assert "l3-refresh-cadence" in names

    def test_periodic_all_has_exact_idle_line_cadence(self, live_runs):
        config, result, _ = live_runs["P.all"]
        checks = {
            check.name: check for check in check_result(result, config=config).checks
        }
        assert checks["l3-periodic-all-exact"].ok

    def test_corrupted_refresh_energy_is_caught(self, live_runs):
        config, result, _ = live_runs["P.all"]
        corrupt = SimulationResult.from_dict(result.to_dict())
        corrupt.energy.by_component["refresh"] *= 1.5
        validation = check_result(corrupt, config=config)
        assert not validation.ok
        assert "refresh-energy-closed-form" in {
            check.name for check in validation.violations
        }

    def test_corrupted_refresh_count_breaks_cadence_bound(self, live_runs):
        config, result, _ = live_runs["P.all"]
        corrupt = SimulationResult.from_dict(result.to_dict())
        corrupt.counters["l3_refreshes"] *= 10_000
        validation = check_result(corrupt, config=config)
        names = {check.name for check in validation.violations}
        assert "l3-refresh-cadence" in names

    def test_phantom_zero_counter_is_caught(self, live_runs):
        config, result, _ = live_runs["SRAM"]
        corrupt = SimulationResult.from_dict(result.to_dict())
        corrupt.counters["l2_bogus"] = 0
        validation = check_result(corrupt, config=config)
        violations = {check.name: check for check in validation.violations}
        assert "no-phantom-zero-counters" in violations
        assert "l2_bogus" in violations["no-phantom-zero-counters"].detail

    def test_sram_refresh_activity_is_caught(self, live_runs):
        config, result, _ = live_runs["SRAM"]
        corrupt = SimulationResult.from_dict(result.to_dict())
        corrupt.counters["l3_refreshes"] = 7
        validation = check_result(corrupt, config=config)
        assert "sram-no-refresh-activity" in {
            check.name for check in validation.violations
        }

    def test_restored_result_without_config_still_validates(self, live_runs):
        _, result, _ = live_runs["P.all"]
        restored = SimulationResult.from_dict(result.to_dict())
        validation = check_result(restored)  # no config available
        assert validation.ok
        names = {check.name for check in validation.checks}
        # Config-dependent groups are skipped, structural ledgers still run.
        assert "l3-refresh-cadence" not in names
        assert "leakage-energy-closed-form" not in names
        assert "refresh-energy-closed-form" in names


class TestReplayStats:
    def test_consistent_stats_pass(self):
        stats = ReplayStats(
            events_popped=10,
            references=100,
            slow_references=30,
            kernel_accesses=50,
            kernel_batches=5,
            wheel_drains=8,
            wheel_skips=3,
            wheel_scans=12,
        )
        checks = check_replay_stats(stats)
        assert all(check.ok for check in checks)

    def test_skips_beyond_scans_fail(self):
        stats = ReplayStats(
            events_popped=10, references=10, wheel_skips=5, wheel_scans=2
        )
        failed = {c.name for c in check_replay_stats(stats) if not c.ok}
        assert "wheel-skips-within-scans" in failed

    def test_kernel_cannot_retire_more_than_private_hits(self):
        stats = ReplayStats(
            events_popped=1, references=10, slow_references=8, kernel_accesses=5
        )
        failed = {c.name for c in check_replay_stats(stats) if not c.ok}
        assert "kernel-accesses-within-private-hits" in failed
        assert "references-conservation" in failed


class TestNetworkCounters:
    def test_same_vertex_message_leaves_no_phantom_zero_counters(self):
        network = TorusNetwork(TorusTopology(2, 2))
        assert network.send_control(1, 1) == 0
        counts = network.counters.as_dict()
        assert counts == {"network_messages": 1}

    def test_cross_vertex_message_counts_hops(self):
        network = TorusNetwork(TorusTopology(2, 2))
        network.send_control(0, 1)
        counts = network.counters.as_dict()
        assert counts["network_router_hops"] == counts["network_link_hops"] > 0


# -- synthetic campaign for the streaming anomaly scan ------------------------

RETENTIONS = tuple(30.0 + 10.0 * i for i in range(17))
DATA_POLICIES = (
    DataPolicySpec.valid(),
    DataPolicySpec.writeback(32, 32),
    DataPolicySpec.all_lines(),
)
SYNTH_INSTRUCTIONS = 123_456


def _synthetic_points():
    return [
        PolicyPoint(retention, timing, data)
        for retention in RETENTIONS
        for timing in (TimingPolicyKind.PERIODIC, TimingPolicyKind.REFRINT)
        for data in DATA_POLICIES
    ]


def _synthetic_result(application, label, retention_us, instructions=SYNTH_INSTRUCTIONS):
    """A well-shaped cell: refresh work strictly shrinking with retention."""
    return SimulationResult(
        config=None,
        application=application,
        execution_cycles=10_000,
        busy_core_cycles=1_000,
        counters={
            "instructions": instructions,
            "l3_refreshes": int(1e6 / retention_us),
        },
        energy=EnergyBreakdown(by_component={"refresh": 1.0 / retention_us}),
        per_core_finish_cycles=[10_000],
        restored_label=label,
    )


@pytest.fixture(scope="module")
def synthetic_campaign(arch, tmp_path_factory):
    """A 102-point stored campaign with one deliberately corrupted cell."""
    points = _synthetic_points()
    assert len(points) >= 100
    requests = [WorkloadRequest("fft", length_scale=LENGTH_SCALE)]
    jobs = enumerate_jobs(requests, points, arch)
    store = ResultStore(tmp_path_factory.mktemp("synthetic") / "store")
    # Mid-series cell of the (Periodic, all) series: retention index 8.
    corrupted = PolicyPoint(
        RETENTIONS[8], TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines()
    )
    for job in jobs:
        if job.is_baseline:
            result = _synthetic_result(job.application, "SRAM", RETENTIONS[-1])
            result.counters.pop("l3_refreshes")
            result.energy.by_component.pop("refresh")
        else:
            point = PolicyPoint.from_label(job.point_label)
            result = _synthetic_result(job.application, job.point_label, point.retention_us)
            if job.point_label == corrupted.label:
                # Refresh work *rising* with retention: the planted anomaly.
                previous = _synthetic_result(
                    job.application, "", RETENTIONS[7]
                )
                result.counters["l3_refreshes"] = (
                    previous.counters["l3_refreshes"] * 2
                )
                result.energy.by_component["refresh"] = (
                    previous.energy.by_component["refresh"] * 2
                )
        store.put(job, result)
    return store, jobs, points, corrupted


class TestAnomalyScan:
    def test_flags_exactly_the_corrupted_cell_in_bounded_memory(
        self, synthetic_campaign, monkeypatch
    ):
        store, jobs, points, corrupted = synthetic_campaign
        sweep = StoreSweep(store, jobs, points, result_cache=8)

        def forbidden(*_args, **_kwargs):  # pragma: no cover - guard only
            raise AssertionError("anomaly scan must stream, not materialise")

        monkeypatch.setattr(sweep, "materialise", forbidden)
        report = scan_sweep(sweep)
        assert report.cells_scanned == len(points) + 1
        assert not report.missing
        flagged = {(a.label, a.rule) for a in report.anomalies}
        assert (corrupted.label, "refresh-energy-monotone") in flagged
        assert (corrupted.label, "refresh-ops-monotone") in flagged
        # The only flagged cells are the corrupted one and its successor
        # (which now sits below a spiked predecessor -- not an anomaly).
        assert {a.label for a in report.anomalies} == {corrupted.label}
        # Bounded memory: the view's LRU never grew past its cap.
        assert len(sweep._result_cache) <= 8

    def test_trace_invariance_catches_diverging_instruction_counts(
        self, synthetic_campaign
    ):
        store, jobs, points, _ = synthetic_campaign
        sweep = StoreSweep(store, jobs, points)
        target = points[3]
        bad = _synthetic_result(
            "fft", target.label, target.retention_us,
            instructions=SYNTH_INSTRUCTIONS + 1,
        )
        job = next(j for j in jobs if j.point_label == target.label)
        store.put(job, bad)
        try:
            report = scan_sweep(sweep)
            assert ("fft", target.label, "trace-invariance") in {
                (a.application, a.label, a.rule) for a in report.anomalies
            }
        finally:
            store.put(
                job,
                _synthetic_result("fft", target.label, target.retention_us),
            )

    def test_missing_cells_are_recorded_and_reset_the_series(
        self, arch, tmp_path
    ):
        points = _synthetic_points()
        requests = [WorkloadRequest("fft", length_scale=LENGTH_SCALE)]
        jobs = enumerate_jobs(requests, points, arch)
        store = ResultStore(tmp_path / "store")
        hole = points[10]
        for job in jobs:
            if job.point_label == hole.label:
                continue
            if job.is_baseline:
                result = _synthetic_result(job.application, "SRAM", RETENTIONS[-1])
            else:
                point = PolicyPoint.from_label(job.point_label)
                result = _synthetic_result(
                    job.application, job.point_label, point.retention_us
                )
            store.put(job, result)
        report = scan_sweep(StoreSweep(store, jobs, points))
        assert report.missing == [f"fft/{hole.label}"]
        assert report.ok  # a gap is not an anomaly
        assert report.cells_scanned == len(points)


class TestValidateSweep:
    @pytest.fixture(scope="class")
    def tiny_sweep(self, live_runs):
        p_all = PolicyPoint(50.0, TimingPolicyKind.PERIODIC, DataPolicySpec.all_lines())
        r_wb = PolicyPoint(
            50.0, TimingPolicyKind.REFRINT, DataPolicySpec.writeback(32, 32)
        )
        sweep = SweepResult(points=[p_all, r_wb])
        sweep.baselines["fft"] = live_runs["SRAM"][1]
        sweep.results["fft"] = {
            p_all.label: live_runs["P.all"][1],
            r_wb.label: live_runs["R.WB(32,32)"][1],
        }
        return sweep

    def test_clean_sweep_validates_clean(self, tiny_sweep):
        validation = validate_sweep(tiny_sweep)
        assert validation.ok
        assert len(validation.runs) == 3
        assert validation.violation_count == 0
        assert validation.anomalies.cells_scanned == 3

    def test_markdown_and_json_renderings(self, tiny_sweep):
        validation = validate_sweep(tiny_sweep)
        text = render_markdown(validation)
        assert "## Counter validation" in text
        assert "All invariants held" in text
        data = as_json_dict(validation)
        assert data["ok"] is True
        assert data["summary"]["runs"] == 3
        assert data["summary"]["violations"] == 0
        assert all(run["checks_run"] > 0 for run in data["runs"])

    def test_violations_surface_in_both_renderings(self, tiny_sweep, live_runs):
        broken = SweepResult(points=list(tiny_sweep.points))
        broken.baselines["fft"] = tiny_sweep.baselines["fft"]
        corrupt = SimulationResult.from_dict(live_runs["P.all"][1].to_dict())
        corrupt.energy.by_component["refresh"] *= 2.0
        broken.results["fft"] = dict(tiny_sweep.results["fft"])
        broken.results["fft"][tiny_sweep.points[0].label] = corrupt
        validation = validate_sweep(broken)
        assert not validation.ok
        text = render_markdown(validation)
        assert "Invariant violations" in text
        assert "refresh-energy-closed-form" in text
        data = as_json_dict(validation)
        assert data["ok"] is False
        assert data["summary"]["violations"] >= 1
