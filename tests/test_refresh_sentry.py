"""Unit tests for the Sentry bit model and sentry groups."""

from __future__ import annotations

import pytest

from repro.mem.line import CacheLine, MESIState
from repro.refresh.sentry import SentryBit, SentryGroup, build_sentry_groups


def line_refreshed_at(cycle: int) -> CacheLine:
    line = CacheLine()
    line.fill(tag=1, state=MESIState.SHARED, cycle=cycle)
    return line


class TestSentryBit:
    def test_fires_before_line_expires(self):
        sentry = SentryBit(retention_cycles=1000, margin_cycles=100)
        line = line_refreshed_at(0)
        assert sentry.fire_time(line) == 900
        assert sentry.line_expiry_time(line) == 1000
        assert sentry.fire_time(line) < sentry.line_expiry_time(line)

    def test_has_fired(self):
        sentry = SentryBit(retention_cycles=1000, margin_cycles=100)
        line = line_refreshed_at(50)
        assert not sentry.has_fired(line, cycle=949)
        assert sentry.has_fired(line, cycle=950)

    def test_access_postpones_fire(self):
        sentry = SentryBit(retention_cycles=1000, margin_cycles=100)
        line = line_refreshed_at(0)
        line.touch(cycle=500)
        assert sentry.fire_time(line) == 1400

    def test_invalid_margins_rejected(self):
        with pytest.raises(ValueError):
            SentryBit(retention_cycles=100, margin_cycles=100)
        with pytest.raises(ValueError):
            SentryBit(retention_cycles=0, margin_cycles=0)


class TestSentryGroup:
    def make_group(self, refresh_cycles):
        sentry = SentryBit(retention_cycles=1000, margin_cycles=200)
        members = [(idx, line_refreshed_at(cycle)) for idx, cycle in enumerate(refresh_cycles)]
        return SentryGroup(0, members, sentry), members

    def test_next_fire_time_is_earliest_valid(self):
        group, members = self.make_group([100, 50, 300])
        assert group.next_fire_time() == 50 + 800
        members[1][1].invalidate()
        assert group.next_fire_time() == 100 + 800

    def test_empty_valid_set_reports_never(self):
        group, members = self.make_group([0, 0])
        for _, line in members:
            line.invalidate()
        assert group.next_fire_time() > 10**15

    def test_due_lines(self):
        group, members = self.make_group([0, 500])
        due = group.due_lines(cycle=800)
        assert [idx for idx, _ in due] == [0]
        due = group.due_lines(cycle=1300)
        assert [idx for idx, _ in due] == [0, 1]

    def test_group_requires_members(self):
        sentry = SentryBit(retention_cycles=1000, margin_cycles=200)
        with pytest.raises(ValueError):
            SentryGroup(0, [], sentry)


class TestGroupBuilding:
    def test_partition_sizes(self):
        sentry = SentryBit(retention_cycles=1000, margin_cycles=10)
        lines = [(i, line_refreshed_at(0)) for i in range(10)]
        groups = build_sentry_groups(lines, group_size=4, sentry=sentry)
        assert [len(group) for group in groups] == [4, 4, 2]
        assert sum(len(group) for group in groups) == 10

    def test_group_size_one(self):
        sentry = SentryBit(retention_cycles=1000, margin_cycles=10)
        lines = [(i, line_refreshed_at(0)) for i in range(3)]
        groups = build_sentry_groups(lines, group_size=1, sentry=sentry)
        assert len(groups) == 3

    def test_bad_group_size(self):
        sentry = SentryBit(retention_cycles=1000, margin_cycles=10)
        with pytest.raises(ValueError):
            build_sentry_groups([(0, line_refreshed_at(0))], 0, sentry)
