"""Property-based equivalence of the batched hit-run access path.

Two layers, both driven by hypothesis:

* **Cache level** -- :meth:`~repro.mem.cache.Cache.access_run` applied to a
  coalesced run must leave every state vector (timestamps, LRU stamps, WB
  Count, the internal LRU tick) byte-identical to the equivalent sequence
  of per-hit :meth:`~repro.mem.cache.Cache.access_index` calls, on every
  backend, for arbitrary interleavings of lines and fills.

* **Simulator level** -- for random multi-core traces under an aggressive
  Refrint configuration (tight retention, so runs truncate at refresh-wheel
  deadlines and references queue behind refresh-busy arrays) and random
  sharing patterns (so runs truncate at coherence invalidations, upgrades
  and owner recalls), run-ahead replay -- the batched path -- must produce
  results byte-identical to per-reference event replay on every available
  backend.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.parameters import (
    CacheGeometry,
    DataPolicySpec,
    RefreshConfig,
    SimulationConfig,
    TimingPolicyKind,
)
from repro.config.presets import scaled_architecture, scaled_retention_cycles
from repro.core.simulator import RefrintSimulator
from repro.cpu.trace import MemoryOperation, TraceRecord, TraceStream
from repro.mem.arrays import HAVE_NUMPY
from repro.mem.cache import Cache
from repro.workloads.suite import ApplicationWorkload, build_application

BACKENDS = ("array", "object") + (("numpy",) if HAVE_NUMPY else ())


def small_geometry() -> CacheGeometry:
    return CacheGeometry(
        name="prop", size_bytes=2048, associativity=2, line_bytes=64,
        access_cycles=2, write_back=True, num_refresh_groups=2,
        sentry_group_size=4,
    )


def cache_state(cache: Cache) -> list:
    """Complete observable per-line state plus the LRU tick."""
    lines = []
    for index in range(cache.num_lines):
        view = cache.view(index)
        lines.append(
            (
                view.tag,
                view.state.value,
                view.valid,
                view.dirty,
                view.last_access_cycle,
                view.last_refresh_cycle,
                view.refresh_count,
                view.lru_stamp,
            )
        )
    lines.append(cache._lru_tick)
    return lines


# One operation: ("hit", line ordinal, repeat count) against previously
# filled blocks, or ("fill", block ordinal) installing a new block.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("hit"), st.integers(0, 11), st.integers(1, 5)),
        st.tuples(st.just("fill"), st.integers(0, 11)),
    ),
    min_size=1,
    max_size=24,
)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_access_run_matches_sequential_access_index(backend, ops):
    """A coalesced committed run == the same hits taken one at a time."""
    geometry = small_geometry()
    blocks = [i * geometry.line_bytes for i in range(12)]

    sequential = Cache(geometry, backend=backend)
    batched = Cache(geometry, backend=backend)

    filled: list = []
    run_idx: list = []
    run_cyc: list = []
    run_cnt: list = []
    cycle = 0

    def land():
        if run_idx:
            batched.access_run(run_idx, run_cyc, run_cnt)
            run_idx.clear()
            run_cyc.clear()
            run_cnt.clear()

    for op in ops:
        if op[0] == "fill" or not filled:
            block = blocks[op[1] % len(blocks)]
            cycle += 3
            # A fill is a structural operation: the pending run must land
            # first (its stamps decide the victim), exactly as the cores'
            # eager-fill path does.
            sequential.fill_block(block, 1, cycle)
            land()
            batched.fill_block(block, 1, cycle)
            if block not in filled:
                filled.append(block)
        else:
            _, ordinal, repeat = op
            block = filled[ordinal % len(filled)]
            index = None
            for _ in range(repeat):
                cycle += 1
                index = sequential.access_index(block, cycle)
                assert index >= 0
            if run_idx and run_idx[-1] == index:
                run_cyc[-1] = cycle
                run_cnt[-1] += repeat
            else:
                run_idx.append(index)
                run_cyc.append(cycle)
                run_cnt.append(repeat)
    land()
    assert cache_state(batched) == cache_state(sequential)


# -- simulator level ----------------------------------------------------------


def _refrint_config(architecture, retention_us: float):
    retention = scaled_retention_cycles(retention_us)
    refresh = RefreshConfig(
        retention_cycles=retention,
        sentry_margin_cycles=RefreshConfig.derive_sentry_margin(
            architecture.l3_bank.num_lines, retention
        ),
        timing_policy=TimingPolicyKind.REFRINT,
        l3_data_policy=DataPolicySpec.writeback(2, 2),
    )
    return SimulationConfig.edram(refresh, architecture)


@st.composite
def random_workloads(draw):
    """Per-core traces mixing private streaks with a shared contended pool."""
    num_cores = 16
    line = 64
    shared_blocks = [0x1000_0000 + i * line for i in range(8)]
    traces = []
    for core in range(num_cores):
        length = draw(st.integers(0, 24))
        records = []
        private_base = 0x8000_0000 + core * 0x10_000
        for _ in range(length):
            kind = draw(st.integers(0, 3))
            if kind == 0:  # shared, contended: upgrades/recalls cut runs
                address = draw(st.sampled_from(shared_blocks))
            else:  # private streak with word-level spatial locality
                address = private_base + draw(st.integers(0, 63)) * 8
            records.append(
                TraceRecord(
                    address=address,
                    operation=(
                        MemoryOperation.WRITE
                        if draw(st.booleans())
                        else MemoryOperation.READ
                    ),
                    gap_instructions=draw(st.integers(0, 6)),
                )
            )
        traces.append(TraceStream(records, thread_id=core))
    return traces


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(traces=random_workloads(), retention_us=st.sampled_from([5.0, 50.0]))
def test_runahead_batching_matches_event_replay(traces, retention_us):
    """Byte-identical results with runs truncated by refresh and coherence.

    The 5 us retention point drives the refresh wheel hard: sentry timers
    fire constantly, arrays go refresh-busy (``busy_horizon`` forces run
    references down the slow path), and WB(2, 2) exhausts its Count quickly
    so policy write-backs and invalidations interleave with the runs.
    """
    architecture = scaled_architecture()
    spec = build_application("fft", architecture, length_scale=0.01).spec
    workload = ApplicationWorkload(spec=spec, traces=tuple(traces))
    config = _refrint_config(architecture, retention_us)

    reference = None
    for backend in BACKENDS:
        for replay in ("event", "runahead"):
            result = RefrintSimulator(
                config, cache_backend=backend, replay=replay
            ).run(workload)
            canonical = json.dumps(result.to_dict(), sort_keys=True)
            if reference is None:
                reference = canonical
            else:
                assert canonical == reference, (backend, replay)
